(** XML index maintenance and probes: tolerance (Section 2.1), path-table
    restriction, range/equality/structural scans, delete consistency. *)

open Helpers
module X = Xmlindex.Xindex
module PT = Storage.Path_table

let mk_index ?(vtype = X.VDouble) pattern =
  X.create
    {
      X.iname = "t_idx";
      table = "t";
      column = "c";
      pattern = Xmlindex.Pattern.of_string pattern;
      vtype;
    }

let load idx pt docs =
  List.iteri (fun i xml -> X.insert_doc idx pt ~row:i (parse_doc xml)) docs

let probe ?(paths_pattern : string option) idx pt r =
  let qpat =
    Xmlindex.Pattern.of_string
      (Option.value paths_pattern ~default:(Xmlindex.Pattern.to_string idx.X.def.X.pattern))
  in
  let paths = X.matching_paths pt qpat in
  X.probe_range idx ~paths r

let index_tests =
  [
    tc "entries created per matching node" (fun () ->
        let idx = mk_index "//lineitem/@price" in
        let pt = PT.create () in
        load idx pt
          [
            "<order><lineitem price=\"10\"/><lineitem price=\"20\"/></order>";
            "<order><lineitem price=\"30\"/></order>";
          ];
        check Alcotest.int "entries" 3 (X.entry_count idx));
    tc "tolerant: uncastable values are skipped, insert succeeds (2.1)"
      (fun () ->
        let idx = mk_index "//lineitem/@price" in
        let pt = PT.create () in
        load idx pt
          [ "<order><lineitem price=\"99.50USD\"/><lineitem price=\"5\"/></order>" ];
        check Alcotest.int "entries" 1 (X.entry_count idx));
    tc "varchar index keeps every value (2.2)" (fun () ->
        let idx = mk_index ~vtype:X.VVarchar "//lineitem/@price" in
        let pt = PT.create () in
        load idx pt
          [ "<order><lineitem price=\"99.50USD\"/><lineitem price=\"5\"/></order>" ];
        check Alcotest.int "entries" 2 (X.entry_count idx));
    tc "broad //@* double index skips non-numeric attributes" (fun () ->
        let idx = mk_index "//@*" in
        let pt = PT.create () in
        load idx pt [ "<o a=\"1\" b=\"xyz\"><p c=\"2.5\"/></o>" ];
        check Alcotest.int "entries" 2 (X.entry_count idx));
    tc "date index accepts only ISO dates" (fun () ->
        let idx = mk_index ~vtype:X.VDate "//date" in
        let pt = PT.create () in
        load idx pt
          [
            "<o><date>2001-01-01</date></o>";
            "<o><date>January 1, 2001</date></o>";
          ];
        check Alcotest.int "entries" 1 (X.entry_count idx));
    tc "element values are the concatenated text (2.1)" (fun () ->
        let idx = mk_index ~vtype:X.VVarchar "//price" in
        let pt = PT.create () in
        load idx pt [ "<o><price>99.50<currency>USD</currency></price></o>" ];
        let rows =
          probe idx pt (X.eq_range (Xdm.Atomic.Str "99.50USD"))
        in
        check Alcotest.int "match concat" 1 (Xdm.Int_set.cardinal rows));
    tc "equality probe returns matching rows only" (fun () ->
        let idx = mk_index "//lineitem/@price" in
        let pt = PT.create () in
        load idx pt
          [
            "<order><lineitem price=\"10\"/></order>";
            "<order><lineitem price=\"20\"/></order>";
            "<order><lineitem price=\"10\"/></order>";
          ];
        let rows = probe idx pt (X.eq_range (Xdm.Atomic.Double 10.)) in
        check Alcotest.(list int) "rows" [ 0; 2 ] (Xdm.Int_set.elements rows));
    tc "range probe with open bounds" (fun () ->
        let idx = mk_index "//lineitem/@price" in
        let pt = PT.create () in
        load idx pt
          (List.init 10 (fun i ->
               Printf.sprintf "<order><lineitem price=\"%d\"/></order>" (i * 10)));
        let rows =
          probe idx pt
            { X.lo = Some (Xdm.Atomic.Double 25., false); hi = None }
        in
        check Alcotest.int "rows > 25" 7 (Xdm.Int_set.cardinal rows));
    tc "path restriction: query narrower than index" (fun () ->
        (* index //price, query //special/price *)
        let idx = mk_index "//price" in
        let pt = PT.create () in
        load idx pt
          [
            "<o><special><price>5</price></special></o>";
            "<o><normal><price>5</price></normal></o>";
          ];
        let rows =
          probe ~paths_pattern:"//special/price" idx pt
            (X.eq_range (Xdm.Atomic.Double 5.))
        in
        check Alcotest.(list int) "only special" [ 0 ]
          (Xdm.Int_set.elements rows));
    tc "structural probe finds rows with any value" (fun () ->
        let idx = mk_index ~vtype:X.VVarchar "//price" in
        let pt = PT.create () in
        load idx pt
          [ "<o><price>x</price></o>"; "<o><nope/></o>"; "<o><price>9</price></o>" ];
        let paths =
          X.matching_paths pt (Xmlindex.Pattern.of_string "//price")
        in
        check Alcotest.(list int) "rows" [ 0; 2 ]
          (Xdm.Int_set.elements (X.probe_structural idx ~paths)));
    tc "delete removes a document's entries" (fun () ->
        let idx = mk_index "//lineitem/@price" in
        let pt = PT.create () in
        let d0 = parse_doc "<order><lineitem price=\"10\"/></order>" in
        let d1 = parse_doc "<order><lineitem price=\"20\"/></order>" in
        X.insert_doc idx pt ~row:0 d0;
        X.insert_doc idx pt ~row:1 d1;
        X.delete_doc idx pt ~row:0 d0;
        check Alcotest.int "entries" 1 (X.entry_count idx);
        let rows = probe idx pt X.full_range in
        check Alcotest.(list int) "rows" [ 1 ] (Xdm.Int_set.elements rows));
    tc "probe statistics count scanned entries" (fun () ->
        let idx = mk_index "//lineitem/@price" in
        let pt = PT.create () in
        load idx pt
          (List.init 100 (fun i ->
               Printf.sprintf "<order><lineitem price=\"%d\"/></order>" i));
        X.reset_stats idx;
        ignore (probe idx pt { X.lo = Some (Xdm.Atomic.Double 89.5, false); hi = None });
        check Alcotest.int "scanned" 10 idx.X.stats.X.entries_scanned;
        check Alcotest.int "probes" 1 idx.X.stats.X.probes);
    tc "text() index vs element index store different nodes (3.8)" (fun () ->
        let e_idx = mk_index ~vtype:X.VVarchar "//price" in
        let t_idx = mk_index ~vtype:X.VVarchar "//price/text()" in
        let pt = PT.create () in
        let doc = "<o><price>99.50<currency>USD</currency></price></o>" in
        load e_idx pt [ doc ];
        let pt2 = PT.create () in
        List.iteri (fun i xml -> X.insert_doc t_idx pt2 ~row:i (parse_doc xml)) [ doc ];
        (* element index holds "99.50USD"; text index holds "99.50" *)
        let e_rows =
          X.probe_range e_idx
            ~paths:(X.matching_paths pt (Xmlindex.Pattern.of_string "//price"))
            (X.eq_range (Xdm.Atomic.Str "99.50"))
        in
        let t_rows =
          X.probe_range t_idx
            ~paths:
              (X.matching_paths pt2 (Xmlindex.Pattern.of_string "//price/text()"))
            (X.eq_range (Xdm.Atomic.Str "99.50"))
        in
        check Alcotest.int "element idx misses" 0 (Xdm.Int_set.cardinal e_rows);
        check Alcotest.int "text idx hits" 1 (Xdm.Int_set.cardinal t_rows));
  ]

let rel_tests =
  [
    tc "relational index probe" (fun () ->
        let ri = Xmlindex.Rel_index.create ~iname:"r" ~table:"t" ~column:"c" () in
        List.iteri
          (fun i v -> Xmlindex.Rel_index.insert ri ~row:i (Storage.Sql_value.Int (Int64.of_int v)))
          [ 5; 3; 8; 3 ];
        check Alcotest.(list int) "eq 3" [ 1; 3 ]
          (Xdm.Int_set.elements
             (Xmlindex.Rel_index.probe_eq ri (Storage.Sql_value.Int 3L))));
    tc "relational index ignores NULLs" (fun () ->
        let ri = Xmlindex.Rel_index.create ~iname:"r" ~table:"t" ~column:"c" () in
        Xmlindex.Rel_index.insert ri ~row:0 Storage.Sql_value.Null;
        check Alcotest.int "empty" 0 (Xmlindex.Rel_index.entry_count ri));
    tc "relational string probe is blank-padded (SQL semantics)" (fun () ->
        let ri = Xmlindex.Rel_index.create ~iname:"r" ~table:"t" ~column:"c" () in
        Xmlindex.Rel_index.insert ri ~row:0 (Storage.Sql_value.Varchar "abc  ");
        check Alcotest.int "found" 1
          (Xdm.Int_set.cardinal
             (Xmlindex.Rel_index.probe_eq ri (Storage.Sql_value.Varchar "abc"))));
  ]

let suite = [ ("xindex:xml", index_tests); ("xindex:relational", rel_tests) ]
