let () =
  Alcotest.run "xqdb"
    (T_xdm.suite @ T_xmlparse.suite @ T_btree.suite @ T_xquery.suite
   @ T_construct.suite @ T_pattern.suite @ T_xindex.suite @ T_storage.suite
   @ T_extract.suite @ T_sqlxml.suite @ T_paper.suite @ T_advisor.suite
   @ T_extensions.suite @ T_robustness.suite @ T_misc.suite
   @ T_probe_prop.suite @ T_def1.suite @ T_analysis.suite @ T_xprof.suite
   @ T_prepare.suite @ T_par_diff.suite @ T_durable.suite @ T_xsan.suite
   @ T_xnet.suite @ T_txn.suite @ T_struct.suite)
