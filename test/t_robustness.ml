(** Lexer edge cases and error-surface robustness for both front ends. *)

open Helpers

let eval_str ?collections src expected =
  check Alcotest.string src expected (xq_str ?collections src)

let xq_lexer_tests =
  [
    tc "name with dots and dashes" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<my-el.x>5</my-el.x>" ]) ]
          "db2-fn:xmlcolumn('C.D')/my-el.x/data(.)" "5");
    tc "subtraction vs name-with-dash needs spaces" (fun () ->
        (* "a -1" is subtraction; "a-1" would be a name *)
        eval_str "let $a := 5 return $a -1" "4");
    tc "decimal starting with a dot" (fun () -> eval_str ".5 + .5" "1");
    tc "exponent literals" (fun () -> eval_str "1e2 + 1E-2" "100.01");
    tc "doubled quotes in both quote styles" (fun () ->
        eval_str "'it''s'" "it's";
        eval_str "\"say \"\"hi\"\"\"" "say \"hi\"");
    tc "operators without spaces" (fun () ->
        eval_str "(1<2)and(3>=3)" "true");
    tc ":= vs :: vs : disambiguation" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<a><b>1</b></a>" ]) ]
          "let $x := db2-fn:xmlcolumn('C.D')/child::a/child::b return \
           $x/data(.)"
          "1");
    tc "unterminated string is a syntax error" (fun () ->
        expect_error "XPST0003" (fun () -> xq "'never closed"));
    tc "unterminated comment is a syntax error" (fun () ->
        expect_error "XPST0003" (fun () -> xq "1 (: open"));
    tc "stray ']' is a syntax error" (fun () ->
        expect_error "XPST0003" (fun () -> xq "1 ]"));
    tc "empty query is a syntax error" (fun () ->
        expect_error "XPST0003" (fun () -> xq "   "));
    tc "constructor with mismatched close tag" (fun () ->
        expect_error "XPST0003" (fun () -> xq "<a></b>"));
    tc "unescaped '}' in constructor content" (fun () ->
        expect_error "XPST0003" (fun () -> xq "<a>}</a>"));
  ]

let sql_robustness_tests =
  let db () =
    let db = Engine.create () in
    ignore (sql db "CREATE TABLE t (a integer, d XML)");
    db
  in
  [
    tc "SQL comments are skipped" (fun () ->
        let db = db () in
        check Alcotest.int "rows" 0
          (sql_count db "SELECT a FROM t -- trailing comment"));
    tc "case-insensitive keywords and identifiers" (fun () ->
        let db = db () in
        ignore (sql db "insert into T values (1, null)");
        check Alcotest.int "rows" 1 (sql_count db "select A from T where A = 1"));
    tc "quoted identifiers preserve case" (fun () ->
        let db = db () in
        ignore (sql db "INSERT INTO t VALUES (1, '<x><Y>2</Y></x>')");
        let r =
          sql db
            "SELECT q.\"MixedCase\" FROM t, XMLTable('$d/x/Y' passing d as \
             \"d\" COLUMNS \"MixedCase\" INTEGER PATH '.') AS q(\"MixedCase\")"
        in
        check Alcotest.int "rows" 1 (List.length r.Sqlxml.Sql_exec.rrows));
    tc "bad XMLPATTERN in DDL is rejected" (fun () ->
        let db = db () in
        expect_error "XQDB0003" (fun () ->
            sql db
              "CREATE INDEX bad ON t(d) USING XMLPATTERN 'a[b]' AS DOUBLE"));
    tc "bad embedded XQuery fails at SQL parse time" (fun () ->
        let db = db () in
        expect_error "XPST0003" (fun () ->
            sql db
              "SELECT a FROM t WHERE XMLExists('for $x in' passing d as \"d\")"));
    tc "insert arity mismatch" (fun () ->
        let db = db () in
        expect_error "XQDB0003" (fun () ->
            ignore (sql db "INSERT INTO t VALUES (1)")));
    tc "unknown table" (fun () ->
        let db = db () in
        expect_error "XQDB0002" (fun () ->
            ignore (sql db "SELECT x FROM nosuch")));
    tc "malformed XML document rejected on insert" (fun () ->
        let db = db () in
        match sql db "INSERT INTO t VALUES (1, '<a><b></a>')" with
        | _ -> Alcotest.fail "should fail"
        | exception Xdm.Xerror.Error e ->
            check Alcotest.string "coded" "FODC0002" e.code);
    tc "string literal escaping ('' inside SQL strings)" (fun () ->
        let db = db () in
        ignore (sql db "CREATE TABLE s (v varchar(20))");
        ignore (sql db "INSERT INTO s VALUES ('it''s')");
        check Alcotest.int "found" 1
          (sql_count db "SELECT v FROM s WHERE v = 'it''s'"));
    tc "date column coercion from literal" (fun () ->
        let db = db () in
        ignore (sql db "CREATE TABLE dts (w date)");
        ignore (sql db "INSERT INTO dts VALUES ('2006-09-15')");
        check Alcotest.int "range" 1
          (sql_count db "SELECT w FROM dts WHERE w > '2006-01-01'"));
    tc "timestamp column" (fun () ->
        let db = db () in
        ignore (sql db "CREATE TABLE ts (w timestamp)");
        ignore (sql db "INSERT INTO ts VALUES ('2006-09-15T13:00:00')");
        check Alcotest.int "eq" 1
          (sql_count db
             "SELECT w FROM ts WHERE w = '2006-09-15T13:00:00'"));
  ]

let date_between_tests =
  [
    tc "xqdb:between over dates with a DATE index" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 50 (fun i ->
               Printf.sprintf "<e><when>200%d-0%d-01</when></e>" (i mod 7)
                 (1 + (i mod 9))));
        ignore
          (sql db
             "CREATE INDEX dw ON t(d) USING XMLPATTERN '//when' AS DATE");
        let q =
          "db2-fn:xmlcolumn('T.D')//e[when/xs:date(.) >= \
           xs:date(\"2003-01-01\") and when/xs:date(.) <= \
           xs:date(\"2004-12-31\")]"
        in
        let plan = assert_def1 db q in
        check Alcotest.bool "dw used" true
          (List.mem "dw" plan.Planner.indexes_used));
  ]

(* ------------------------------------------------------------------ *)
(* Statement atomicity                                                 *)
(* ------------------------------------------------------------------ *)

(** A table with an XML column and a path-value index, preloaded with
    [n] documents via one (committed) bulk load. *)
let indexed_db ?(n = 10) () =
  let db = Engine.create () in
  ignore (sql db "CREATE TABLE t (a integer, d XML)");
  ignore
    (sql db "CREATE INDEX ip ON t(d) USING XMLPATTERN '//p' AS DOUBLE");
  Engine.load_documents db ~table:"t" ~column:"d"
    (List.init n (fun i -> Printf.sprintf "<a><p>%d</p></a>" i));
  db

let table db name = Storage.Database.table_exn (Engine.database db) name

let entry_counts db =
  List.map
    (fun (i : Xmlindex.Xindex.t) ->
      (i.Xmlindex.Xindex.def.Xmlindex.Xindex.iname, Xmlindex.Xindex.entry_count i))
    (Engine.xml_indexes db)

let assert_consistent db =
  List.iter
    (fun (iname, diffs) ->
      check Alcotest.(list string) (iname ^ " consistent") [] diffs)
    (Engine.check_consistency db)

let atomicity_tests =
  [
    tc "multi-row INSERT failing on row k rolls back rows and indexes"
      (fun () ->
        let db = indexed_db () in
        let rows0 = Storage.Table.row_count (table db "t") in
        let entries0 = entry_counts db in
        (match
           sql db
             "INSERT INTO t VALUES (100, '<a><p>100</p></a>'), \
              (101, '<a><p>101</p></a>'), (102, '<a><p>102</a>')"
         with
        | _ -> Alcotest.fail "should fail on the malformed third row"
        | exception Xdm.Xerror.Error e ->
            check Alcotest.string "coded" "FODC0002" e.code);
        check Alcotest.int "row_count unchanged" rows0
          (Storage.Table.row_count (table db "t"));
        check
          Alcotest.(list (pair string int))
          "entry_count unchanged" entries0 (entry_counts db);
        assert_consistent db);
    tc "UPDATE failing mid-scan restores prior values" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE u (w date, src varchar(20))");
        ignore (sql db "INSERT INTO u VALUES (NULL, '2006-05-05')");
        ignore (sql db "INSERT INTO u VALUES (NULL, 'notadate')");
        (* row 1 coerces fine, row 2 fails — row 1's update must revert *)
        expect_error "FORG0001" (fun () ->
            ignore (sql db "UPDATE u SET w = src"));
        check Alcotest.int "both w still NULL" 2
          (sql_count db "SELECT w FROM u WHERE w IS NULL"));
    tc "UPDATE failing mid-scan restores index entries" (fun () ->
        let db = indexed_db ~n:4 () in
        (* one poisoned document: its <p> is not castable to a number, so
           the data-dependent SET fails only when the scan reaches it —
           after earlier rows were already rewritten and re-indexed *)
        Engine.load_documents db ~table:"t" ~column:"d"
          [ "<a><p>notanumber</p></a>" ];
        let entries0 = entry_counts db in
        (match
           sql db
             "UPDATE t SET d = XMLQUERY('<a><p>{$D/a/p + 1}</p></a>' \
              PASSING d AS \"D\")"
         with
        | _ -> Alcotest.fail "should fail on the poisoned row"
        | exception Xdm.Xerror.Error _ -> ());
        check
          Alcotest.(list (pair string int))
          "entry_count unchanged" entries0 (entry_counts db);
        assert_consistent db;
        (* prior values restored: p=0 exists only pre-update (the SET
           shifts every p up by one) *)
        check Alcotest.int "p=0 doc still there" 1
          (List.length
             (fst (xquery db "db2-fn:xmlcolumn('T.D')//a[p = 0]"))));
    tc "successful UPDATE rewrites rows and keeps indexes consistent"
      (fun () ->
        let db = indexed_db ~n:5 () in
        let r = sql db "UPDATE t SET d = '<a><p>777</p></a>' WHERE a = 2" in
        check Alcotest.(list (list string)) "updated 1"
          [ [ "1" ] ]
          (List.map
             (List.map Storage.Sql_value.to_display)
             r.Sqlxml.Sql_exec.rrows);
        assert_consistent db;
        (* the new value must be probeable through the index *)
        let plan = assert_def1 db "db2-fn:xmlcolumn('T.D')//a[p = 777]" in
        check Alcotest.bool "ip used" true (List.mem "ip" (used plan)));
    tc "UPDATE of unknown SET column is a catalog error" (fun () ->
        let db = indexed_db ~n:1 () in
        expect_error "XQDB0002" (fun () ->
            ignore (sql db "UPDATE t SET nosuch = 1")));
  ]

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let faultinject_tests =
  [
    tc "armed fault at index.insert_doc rolls back a bulk load" (fun () ->
        let db = indexed_db ~n:10 () in
        let rows0 = Storage.Table.row_count (table db "t") in
        let entries0 = entry_counts db in
        (* fail while indexing the 5th document of the next load *)
        Faultinject.with_fault ~point:"index.insert_doc" ~n:5 (fun () ->
            match
              Engine.load_documents db ~table:"t" ~column:"d"
                (List.init 10 (fun i ->
                     Printf.sprintf "<a><p>%d</p></a>" (100 + i)))
            with
            | _ -> Alcotest.fail "should fail on the 5th document"
            | exception Faultinject.Injected { point; _ } ->
                check Alcotest.string "point" "index.insert_doc" point);
        check Alcotest.int "row_count unchanged" rows0
          (Storage.Table.row_count (table db "t"));
        check
          Alcotest.(list (pair string int))
          "entry_count unchanged" entries0 (entry_counts db);
        assert_consistent db;
        (* the trigger is disarmed: the engine keeps working afterwards *)
        Engine.load_documents db ~table:"t" ~column:"d" [ "<a><p>42</p></a>" ];
        check Alcotest.int "post-fault load works" (rows0 + 1)
          (Storage.Table.row_count (table db "t"));
        assert_consistent db);
    tc "armed fault at storage.insert rolls back a multi-row INSERT"
      (fun () ->
        let db = indexed_db ~n:3 () in
        let rows0 = Storage.Table.row_count (table db "t") in
        Faultinject.with_fault ~point:"storage.insert" ~n:2 (fun () ->
            match
              sql db
                "INSERT INTO t VALUES (50, '<a><p>50</p></a>'), \
                 (51, '<a><p>51</p></a>'), (52, '<a><p>52</p></a>')"
            with
            | _ -> Alcotest.fail "should fail"
            | exception Faultinject.Injected _ -> ());
        check Alcotest.int "row_count unchanged" rows0
          (Storage.Table.row_count (table db "t"));
        assert_consistent db);
    tc "armed fault at btree.split rolls back cleanly" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer, d XML)");
        ignore
          (sql db
             "CREATE INDEX ip ON t(d) USING XMLPATTERN '//p' AS DOUBLE");
        (* enough entries to overflow an order-64 leaf mid-load *)
        Faultinject.with_fault ~point:"btree.split" ~n:1 (fun () ->
            match
              Engine.load_documents db ~table:"t" ~column:"d"
                (List.init 100 (fun i ->
                     Printf.sprintf "<a><p>%d</p><p>%d</p></a>" i (i + 1000)))
            with
            | _ -> Alcotest.fail "a split should have been injected"
            | exception Faultinject.Injected { point; _ } ->
                check Alcotest.string "point" "btree.split" point);
        check Alcotest.int "no rows remain" 0
          (Storage.Table.row_count (table db "t"));
        assert_consistent db;
        (* the tree still works: reload the same documents *)
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 100 (fun i ->
               Printf.sprintf "<a><p>%d</p><p>%d</p></a>" i (i + 1000)));
        assert_consistent db);
    tc "armed fault at index.delete_doc rolls back a DELETE" (fun () ->
        let db = indexed_db ~n:6 () in
        let rows0 = Storage.Table.row_count (table db "t") in
        let entries0 = entry_counts db in
        Faultinject.with_fault ~point:"index.delete_doc" ~n:3 (fun () ->
            match sql db "DELETE FROM t" with
            | _ -> Alcotest.fail "should fail"
            | exception Faultinject.Injected _ -> ());
        check Alcotest.int "row_count unchanged" rows0
          (Storage.Table.row_count (table db "t"));
        check
          Alcotest.(list (pair string int))
          "entry_count unchanged" entries0 (entry_counts db);
        assert_consistent db);
    tc "sweep: every fault point leaves a consistent engine" (fun () ->
        Faultinject.sweep (fun _point ->
            let db = indexed_db ~n:5 () in
            (* a mixed workload touching storage, both index kinds and
               evaluation; whichever operation trips the armed point, the
               per-statement undo must leave the engine consistent *)
            (try
               ignore (sql db "CREATE INDEX ra ON t(a)");
               Engine.load_documents db ~table:"t" ~column:"d"
                 (List.init 30 (fun i ->
                      Printf.sprintf "<a><p>%d</p><p>%d</p></a>" i (i + 500)));
               ignore
                 (sql db
                    "UPDATE t SET d = XMLQUERY('<a><p>{($D/a/p)[1] + \
                     1}</p></a>' PASSING d AS \"D\") WHERE a < 3");
               ignore (sql db "DELETE FROM t WHERE a = 1")
             with Faultinject.Injected _ -> ());
            assert_consistent db));
    tc "check_consistency reports an injected bogus entry" (fun () ->
        let db = indexed_db ~n:2 () in
        let idx = List.hd (Engine.xml_indexes db) in
        Xmlindex.Xindex.BT.insert idx.Xmlindex.Xindex.tree
          { Xmlindex.Xindex.Key.v = Xdm.Atomic.Double 999999.;
            path = 0; row = 999; node = 999 }
          ();
        match Engine.check_consistency db with
        | [ (_, [ diff ]) ] ->
            check Alcotest.bool "reported as stale" true
              (contains_sub ~affix:"stale entry" diff)
        | _ -> Alcotest.fail "expected exactly one discrepancy");
  ]

(* ------------------------------------------------------------------ *)
(* Resource governor                                                   *)
(* ------------------------------------------------------------------ *)

let limits_with ?steps ?nodes ?depth ?timeout () =
  {
    Xdm.Limits.max_steps = steps;
    max_nodes = nodes;
    max_depth = depth;
    timeout;
  }

let pathological_query =
  "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[.//lineitem[.//quantity[. >= 0] \
   or .//price[string-length(string(.)) >= 0]]]"

let governor_tests =
  [
    tc "nested-// query over 500 docs dies under a 10k-step budget"
      (fun () ->
        let db = paper_db ~n_orders:500 () in
        Engine.set_limits db (limits_with ~steps:10_000 ());
        expect_error "XQDB0001" (fun () ->
            ignore (xquery db pathological_query));
        (* the same query succeeds with the budget raised *)
        Engine.set_limits db (limits_with ~steps:100_000_000 ());
        let items, _ = xquery db pathological_query in
        check Alcotest.bool "has results" true (items <> []));
    tc "step budget applies to SQL row scans too" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer)");
        for i = 1 to 100 do
          ignore
            (sql db (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
        done;
        Engine.set_limits db (limits_with ~steps:50 ());
        expect_error "XQDB0001" (fun () ->
            ignore (sql db "SELECT a FROM t"));
        Engine.set_limits db Xdm.Limits.unlimited;
        check Alcotest.int "unlimited scan ok" 100
          (sql_count db "SELECT a FROM t"));
    tc "recursion-depth budget stops deep nesting" (fun () ->
        let deep =
          String.concat "" (List.init 60 (fun _ -> "1+("))
          ^ "1"
          ^ String.make 60 ')'
        in
        expect_error "XQDB0001" (fun () ->
            Xquery.Eval.run_string ~limits:(limits_with ~depth:20 ()) deep);
        let r =
          Xquery.Eval.run_string ~limits:(limits_with ~depth:500 ()) deep
        in
        check Alcotest.string "sum" "61"
          (Xmlparse.Xml_writer.seq_to_string r));
    tc "node-allocation budget stops constructor storms" (fun () ->
        let q = "for $i in 1 to 100 return <a><b/><c/></a>" in
        expect_error "XQDB0001" (fun () ->
            Xquery.Eval.run_string ~limits:(limits_with ~nodes:50 ()) q);
        let r =
          Xquery.Eval.run_string ~limits:(limits_with ~nodes:1_000_000 ()) q
        in
        check Alcotest.int "all built" 100 (List.length r));
    tc "zero wall-clock timeout trips on a long evaluation" (fun () ->
        expect_error "XQDB0001" (fun () ->
            Xquery.Eval.run_string
              ~limits:(limits_with ~timeout:0. ())
              "count(for $i in 1 to 5000 return $i + 1)"));
    tc "depth counter survives caught errors (no drift)" (fun () ->
        (* string-length(()) raises inside the evaluator... actually use a
           query whose subexpression raises and is retried in a loop *)
        let limits = limits_with ~depth:50 () in
        let q = "for $i in 1 to 40 return ($i + 1)" in
        let r = Xquery.Eval.run_string ~limits q in
        check Alcotest.int "all evaluated" 40 (List.length r));
    tc "unlimited limits cost nothing and stay disabled" (fun () ->
        check Alcotest.bool "meter unarmed" false
          (Xdm.Limits.meter ()).Xdm.Limits.armed);
  ]

let suite =
  [
    ("robust:xq_lexer", xq_lexer_tests);
    ("robust:sql", sql_robustness_tests);
    ("robust:dates", date_between_tests);
    ("robust:atomicity", atomicity_tests);
    ("robust:faultinject", faultinject_tests);
    ("robust:governor", governor_tests);
  ]
