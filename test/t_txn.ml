(** {!Engine.Txn}: MVCC snapshot isolation and the single-writer slot.

    The contract under test (docs/TRANSACTIONS.md):

    - a read-only transaction pins one committed snapshot for its whole
      life — concurrent commits never leak into it;
    - a read-write transaction reads its own uncommitted statements,
      publishes them atomically at commit, and restores rows *and* index
      entries on rollback;
    - at most one read-write transaction exists at a time — a second
      [begin_] is refused with [XQDB0007] (write-write conflict), as are
      writes in a read-only transaction, DDL/checkpoint inside an
      explicit transaction, and any use of a finished handle;
    - serializability: whatever a concurrent reader observes is a state
      some serial execution of the committed transactions produces —
      never a partial transaction. The qcheck property drives random
      transaction batches against free-running reader threads at
      parallelism 1, 2 and 4. *)

open Helpers

let mk_db () =
  let db = Engine.create () in
  ignore (Engine.exec db "CREATE TABLE t (a integer, d XML)");
  ignore
    (Engine.exec db "CREATE INDEX ip ON t(d) USING XMLPATTERN '//p' AS DOUBLE");
  List.iter
    (fun i ->
      ignore
        (Engine.exec db
           (Printf.sprintf "INSERT INTO t VALUES (%d, '<a><p>%d</p></a>')" i i)))
    [ 1; 2; 3 ];
  db

let count ?txn db =
  List.length (Engine.outcome_rows (Engine.exec ?txn db "SELECT a FROM t"))

(* Rows that the index-backed probe finds: must track the table exactly
   through commit and rollback. *)
let probe ?txn db =
  List.length
    (Engine.outcome_rows
       (Engine.exec ?txn db
          "SELECT a FROM t WHERE XMLExists('$d//p[. > 0]' passing d as \"d\")"))

let entry_counts db =
  List.map
    (fun (i : Xmlindex.Xindex.t) ->
      ( i.Xmlindex.Xindex.def.Xmlindex.Xindex.iname,
        Xmlindex.Xindex.entry_count i ))
    (Engine.xml_indexes db)

let ins ?txn db k =
  ignore
    (Engine.exec ?txn db
       (Printf.sprintf "INSERT INTO t VALUES (%d, '<a><p>%d</p></a>')" k k))

(* ------------------------------------------------------------------ *)
(* Structural (pre/post) encodings under MVCC                          *)
(* ------------------------------------------------------------------ *)

let s_counts db =
  List.map
    (fun (i : Xmlindex.Structindex.t) ->
      ( i.Xmlindex.Structindex.def.Xmlindex.Structindex.iname,
        (Xmlindex.Structindex.doc_count i, Xmlindex.Structindex.node_count i)
      ))
    (Engine.struct_indexes db)

let xml_of ?txn db src =
  Engine.to_xml (Engine.outcome_items (Engine.exec ?txn db src))

let struct_tests =
  let sq = "db2-fn:xmlcolumn('T.D')//p/parent::a" in
  [
    tc "read-only txn keeps structural answers pinned during a writer load"
      (fun () ->
        let db = mk_db () in
        ignore (Engine.exec db "CREATE STRUCTURAL INDEX st ON t(d)");
        let ro = Engine.Txn.begin_ ~mode:Engine.Txn.Read_only db in
        let pinned = xml_of ~txn:ro db sq in
        let o = Engine.exec ~txn:ro db sq in
        check Alcotest.bool "snapshot read is a structural join" true
          (List.exists (contains_sub ~affix:"PSTRUCTJOIN") o.Engine.notes);
        (* autocommit bulk load lands new docs + encodings in the live
           engine while the reader is mid-transaction *)
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 8 (fun i -> Printf.sprintf "<a><p>%d</p></a>" (100 + i)));
        check Alcotest.string "pinned snapshot answer unchanged" pinned
          (xml_of ~txn:ro db sq);
        Engine.Txn.commit ro;
        (* after the txn the implicit read sees all eleven documents *)
        check Alcotest.bool "implicit read grew" true
          (String.length (xml_of db sq) > String.length pinned);
        List.iter
          (fun (iname, diffs) ->
            check Alcotest.(list string) (iname ^ " consistent") [] diffs)
          (Engine.check_consistency db));
    tc "rollback restores structural-index entries" (fun () ->
        let db = mk_db () in
        ignore (Engine.exec db "CREATE STRUCTURAL INDEX st ON t(d)");
        let counts0 = s_counts db in
        let answer0 = xml_of db sq in
        let tx = Engine.Txn.begin_ db in
        ins ~txn:tx db 60;
        ignore
          (Engine.exec ~txn:tx db
             "UPDATE t SET d = '<a><p>999</p><p>998</p></a>' WHERE a = 1");
        ignore (Engine.exec ~txn:tx db "DELETE FROM t WHERE a = 2");
        Engine.Txn.rollback tx;
        check
          Alcotest.(list (pair string (pair int int)))
          "doc/node counts restored" counts0 (s_counts db);
        check Alcotest.string "structural answer restored" answer0
          (xml_of db sq);
        List.iter
          (fun (iname, diffs) ->
            check Alcotest.(list string) (iname ^ " consistent") [] diffs)
          (Engine.check_consistency db));
    tc "commit publishes new structural encodings" (fun () ->
        let db = mk_db () in
        ignore (Engine.exec db "CREATE STRUCTURAL INDEX st ON t(d)");
        let tx = Engine.Txn.begin_ db in
        ins ~txn:tx db 61;
        ins ~txn:tx db 62;
        Engine.Txn.commit tx;
        check Alcotest.int "five docs encoded" 5
          (Xmlindex.Structindex.doc_count
             (List.hd (Engine.struct_indexes db)));
        List.iter
          (fun (iname, diffs) ->
            check Alcotest.(list string) (iname ^ " consistent") [] diffs)
          (Engine.check_consistency db));
  ]

(* ------------------------------------------------------------------ *)
(* Unit tests (swept over parallelism 1/2/4 where it matters)          *)
(* ------------------------------------------------------------------ *)

let pars = [ 1; 2; 4 ]

let sweep name f =
  List.map
    (fun par ->
      tc
        (Printf.sprintf "%s (par %d)" name par)
        (fun () ->
          let db = mk_db () in
          Engine.set_parallelism db par;
          f db))
    pars

let unit_tests =
  sweep "read-only txn pins its snapshot; commit publishes" (fun db ->
      let ro = Engine.Txn.begin_ ~mode:Engine.Txn.Read_only db in
      check Alcotest.int "initial" 3 (count ~txn:ro db);
      ins db 10;
      (* autocommit insert committed — but not into the pinned snapshot *)
      check Alcotest.int "snapshot unchanged" 3 (count ~txn:ro db);
      check Alcotest.int "implicit read sees the commit" 4 (count db);
      Engine.Txn.commit ro;
      check Alcotest.int "after the txn" 4 (count db))
  @ sweep "read-write txn: read-your-writes, atomic publication" (fun db ->
        let ro = Engine.Txn.begin_ ~mode:Engine.Txn.Read_only db in
        let tx = Engine.Txn.begin_ db in
        ins ~txn:tx db 10;
        ins ~txn:tx db 11;
        check Alcotest.int "writer reads its own writes" 5 (count ~txn:tx db);
        check Alcotest.int "reader still at the old snapshot" 3
          (count ~txn:ro db);
        check Alcotest.int "implicit reads unaffected until commit" 3
          (count db);
        Engine.Txn.commit tx;
        check Alcotest.int "published at commit" 5 (count db);
        check Alcotest.int "old snapshot still pinned" 3 (count ~txn:ro db);
        Engine.Txn.rollback ro)
  @ sweep "rollback restores rows and index entries" (fun db ->
        let rows0 = count db in
        let probes0 = probe db in
        let entries0 = entry_counts db in
        let tx = Engine.Txn.begin_ db in
        ins ~txn:tx db 20;
        ignore
          (Engine.exec ~txn:tx db
             "UPDATE t SET d = '<a><p>999</p></a>' WHERE a = 1");
        ignore (Engine.exec ~txn:tx db "DELETE FROM t WHERE a = 2");
        check Alcotest.bool "txn saw its changes" true
          (count ~txn:tx db = rows0);
        Engine.Txn.rollback tx;
        check Alcotest.int "rows restored" rows0 (count db);
        check
          Alcotest.(list (pair string int))
          "index entries restored" entries0 (entry_counts db);
        check Alcotest.int "index probe agrees" probes0 (probe db))
  @ sweep "transaction discipline errors are XQDB0007" (fun db ->
        (* write-write conflict *)
        let tx = Engine.Txn.begin_ db in
        expect_error "XQDB0007" (fun () -> Engine.Txn.begin_ db);
        (* DDL and checkpoint are autocommit-only *)
        expect_error "XQDB0007" (fun () ->
            Engine.exec ~txn:tx db
              "CREATE INDEX nope ON t(d) USING XMLPATTERN '//q' AS DOUBLE");
        expect_error "XQDB0007" (fun () -> Engine.checkpoint db);
        Engine.Txn.commit tx;
        (* the slot is free again *)
        let tx2 = Engine.Txn.begin_ db in
        (* a finished handle refuses everything *)
        Engine.Txn.rollback tx2;
        expect_error "XQDB0007" (fun () -> Engine.Txn.commit tx2);
        expect_error "XQDB0007" (fun () -> count ~txn:tx2 db);
        (* writes in a read-only transaction *)
        let ro = Engine.Txn.begin_ ~mode:Engine.Txn.Read_only db in
        expect_error "XQDB0007" (fun () -> ins ~txn:ro db 30);
        Engine.Txn.commit ro)
  @ [
      tc "autocommit writes are refused while a txn holds the writer"
        (fun () ->
          let db = mk_db () in
          let tx = Engine.Txn.begin_ db in
          expect_error "XQDB0007" (fun () -> ins db 40);
          Engine.Txn.commit tx;
          ins db 40;
          check Alcotest.int "slot released" 4 (count db));
      tc "txn cursor streams the transaction's snapshot" (fun () ->
          let db = mk_db () in
          let ro = Engine.Txn.begin_ ~mode:Engine.Txn.Read_only db in
          let c = Engine.open_cursor ~txn:ro db "SELECT a FROM t" in
          ins db 50;
          (* the pinned cursor is oblivious to the commit *)
          let n =
            Engine.Cursor.fold (fun acc _ -> acc + 1) 0 c
          in
          check Alcotest.int "cursor rows" 3 n;
          Engine.Cursor.close c;
          Engine.Txn.commit ro);
    ]
  @ struct_tests

(* ------------------------------------------------------------------ *)
(* Serializability property                                            *)
(* ------------------------------------------------------------------ *)

(* A batch of read-write transactions, each inserting [k] rows and then
   committing or rolling back, runs against three free-running reader
   threads. Every count a reader observes must be a committed-prefix
   state — the row counts some serial execution of the committed
   transactions passes through. Observing anything else means a reader
   saw a partial transaction (or a rolled-back one). *)
let gen_batch =
  QCheck.Gen.(
    pair
      (list_size (int_range 1 3) (pair (int_range 1 8) bool))
      (oneofl [ 1; 2; 4 ]))

let prop_serializable =
  QCheck.Test.make ~count:20
    ~name:"txn: readers only ever observe serial states"
    (QCheck.make gen_batch)
    (fun (batch, par) ->
      let db = mk_db () in
      Engine.set_parallelism db par;
      Engine.enable_concurrent db;
      let n0 = count db in
      (* committed-prefix states: n0, then one milestone per committed
         transaction *)
      let milestones =
        List.rev
          (List.fold_left
             (fun acc (k, commit) ->
               if commit then ((List.hd acc : int) + k) :: acc else acc)
             [ n0 ] batch)
      in
      let stop = Atomic.make false in
      let violations = Atomic.make 0 in
      let readers =
        List.init 3 (fun _ ->
            Thread.create
              (fun () ->
                while not (Atomic.get stop) do
                  let n = count db in
                  if not (List.mem n milestones) then
                    Atomic.incr violations;
                  Thread.yield ()
                done)
              ())
      in
      let next = ref 1000 in
      List.iter
        (fun (k, commit) ->
          let tx = Engine.Txn.begin_ db in
          for _ = 1 to k do
            incr next;
            ins ~txn:tx db !next
          done;
          if commit then Engine.Txn.commit tx else Engine.Txn.rollback tx)
        batch;
      Atomic.set stop true;
      List.iter Thread.join readers;
      Atomic.get violations = 0
      && count db = List.hd (List.rev milestones))

let suite =
  [
    ("txn:unit", unit_tests);
    ("txn:prop", [ QCheck_alcotest.to_alcotest prop_serializable ]);
  ]
