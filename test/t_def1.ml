(** Definition 1 as a property: for random collections, random indexes and
    random queries from the paper's template family,
    [Q(D) = Q(I(P, D))] — the indexed plan must return exactly what the
    full collection scan returns.

    This is the strongest check on the whole stack: predicate extraction,
    containment, type compatibility, probes, between-merging and the
    planner all have to be conservative-correct for it to hold. *)


(* ------------------------- generators --------------------------- *)

let gen_doc =
  (* order-like documents with the paper's anomalies *)
  let open QCheck.Gen in
  let* n_items = int_range 0 3 in
  let* items =
    list_repeat n_items
      (let* price = int_bound 300 in
       let* style =
         frequency
           [ (5, return `Attr); (2, return `Elem); (1, return `StrPrice);
             (1, return `NoPrice); (1, return `MultiPrice) ]
       in
       let* pid = int_bound 5 in
       return (price, style, pid))
  in
  let* custid = int_bound 20 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<order>";
  Buffer.add_string buf (Printf.sprintf "<custid>%d</custid>" (1000 + custid));
  List.iter
    (fun (price, style, pid) ->
      (match style with
      | `Attr ->
          Buffer.add_string buf
            (Printf.sprintf "<lineitem price=\"%d\"><price>%d</price>" price price)
      | `Elem ->
          Buffer.add_string buf
            (Printf.sprintf "<lineitem><price>%d</price>" price)
      | `StrPrice ->
          Buffer.add_string buf
            (Printf.sprintf "<lineitem price=\"%dUSD\"><price>%dUSD</price>"
               price price)
      | `NoPrice -> Buffer.add_string buf "<lineitem>"
      | `MultiPrice ->
          Buffer.add_string buf
            (Printf.sprintf
               "<lineitem price=\"%d\"><price>%d</price><price>%d</price>"
               price (price + 200) (price / 2)));
      Buffer.add_string buf
        (Printf.sprintf "<product><id>p%d</id></product></lineitem>" pid))
    items;
  Buffer.add_string buf "</order>";
  return (Buffer.contents buf)

let query_templates =
  [|
    "db2-fn:xmlcolumn('T.D')//order[lineitem/@price > %d]";
    "db2-fn:xmlcolumn('T.D')//order[lineitem/@price = %d]";
    "db2-fn:xmlcolumn('T.D')//order[lineitem/@price < %d]";
    "db2-fn:xmlcolumn('T.D')//lineitem[@price > %d]";
    "db2-fn:xmlcolumn('T.D')//order[lineitem/price > %d]";
    "db2-fn:xmlcolumn('T.D')//order[lineitem/@price > \"%d\"]";
    "db2-fn:xmlcolumn('T.D')//order[lineitem[@price > %d and @price < 250]]";
    "db2-fn:xmlcolumn('T.D')//order[lineitem/price > %d and lineitem/price \
     < 250]";
    "for $o in db2-fn:xmlcolumn('T.D')/order where $o/lineitem/@price > %d \
     return $o/custid";
    "for $o in db2-fn:xmlcolumn('T.D')/order let $p := $o/lineitem/@price \
     where $p > %d return <r>{$o/custid}</r>";
    "for $o in db2-fn:xmlcolumn('T.D')/order return $o/lineitem[@price > %d]";
    "for $o in db2-fn:xmlcolumn('T.D')/order return <r>{$o/lineitem[@price \
     > %d]}</r>";
    "for $d in db2-fn:xmlcolumn('T.D') for $i in $d//lineitem[@price > %d] \
     return <r>{$i/product/id}</r>";
    "count(db2-fn:xmlcolumn('T.D')//order[custid = 10%d])";
    "db2-fn:xmlcolumn('T.D')//order[lineitem/product/id = 'p%d']";
    "db2-fn:xmlcolumn('T.D')//lineitem/price/data()[. > %d and . < 250]";
    "some $o in db2-fn:xmlcolumn('T.D')//order satisfies $o/lineitem/@price \
     > %d";
    "db2-fn:xmlcolumn('T.D')//order[lineitem/@price > %d][custid < 1015]";
  |]

let index_defs =
  [|
    "CREATE INDEX i0 ON t(d) USING XMLPATTERN '//lineitem/@price' AS DOUBLE";
    "CREATE INDEX i1 ON t(d) USING XMLPATTERN '//@price' AS DOUBLE";
    "CREATE INDEX i2 ON t(d) USING XMLPATTERN '//price' AS DOUBLE";
    "CREATE INDEX i3 ON t(d) USING XMLPATTERN '//price' AS VARCHAR(30)";
    "CREATE INDEX i4 ON t(d) USING XMLPATTERN '//lineitem/@price' AS \
     VARCHAR(30)";
    "CREATE INDEX i5 ON t(d) USING XMLPATTERN '//custid' AS DOUBLE";
    "CREATE INDEX i6 ON t(d) USING XMLPATTERN '//product/id' AS VARCHAR(30)";
    "CREATE INDEX i7 ON t(d) USING XMLPATTERN '//@*' AS DOUBLE";
    "CREATE INDEX i8 ON t(d) USING XMLPATTERN '//*' AS VARCHAR(50)";
    "CREATE INDEX i9 ON t(d) USING XMLPATTERN '/order/lineitem/price' AS \
     DOUBLE";
  |]

let gen_case =
  QCheck.Gen.(
    let* docs = list_size (int_range 1 12) gen_doc in
    let* tmpl = int_bound (Array.length query_templates - 1) in
    let* v = int_bound 9 in
    let* idxs = list_size (int_range 1 4) (int_bound (Array.length index_defs - 1)) in
    let value = v * 30 in
    let query =
      Scanf.format_from_string query_templates.(tmpl) "%d" |> fun fmt ->
      Printf.sprintf fmt value
    in
    return (docs, query, List.sort_uniq compare idxs))

let arb_case =
  QCheck.make gen_case ~print:(fun (docs, query, idxs) ->
      Printf.sprintf "query=%s\nindexes=%s\ndocs=\n%s" query
        (String.concat ","
           (List.map (fun i -> index_defs.(i)) idxs))
        (String.concat "\n" docs))

let run_case (docs, query, idxs) =
  let db = Engine.create () in
  ignore (Helpers.sql db "CREATE TABLE t (id integer, d XML)");
  Engine.load_documents db ~table:"t" ~column:"d" docs;
  List.iter (fun i -> ignore (Helpers.sql db index_defs.(i))) idxs;
  let serial r = Xmlparse.Xml_writer.seq_to_string r in
  let indexed =
    match Helpers.xquery db query with
    | r, _ -> Ok (serial r)
    | exception Xdm.Xerror.Error e -> Error e.code
  in
  let scanned =
    match Helpers.xquery_noindex db query with
    | r -> Ok (serial r)
    | exception Xdm.Xerror.Error e -> Error e.code
  in
  (* Errors may legitimately be avoided by pre-filtering (XQuery permits
     not raising errors in filtered-away branches); but a *successful*
     scan must never disagree with a successful indexed run. *)
  match (indexed, scanned) with
  | Ok a, Ok b -> a = b
  | Error _, Error _ -> true
  | Ok _, Error _ -> true (* index pre-filter avoided a dynamic error *)
  | Error _, Ok _ -> false

let prop_def1 =
  QCheck.Test.make ~name:"Definition 1: Q(D) = Q(I(P,D))" ~count:400 arb_case
    run_case

(* Same property through the SQL/XML layer: XMLEXISTS row filtering with
   and without indexes. *)
let sql_templates =
  [|
    "SELECT id FROM t WHERE XMLExists('$d//lineitem[@price > %d]' passing d \
     as \"d\")";
    "SELECT id FROM t WHERE XMLExists('$d/order[custid = 10%d]' passing d \
     as \"d\")";
    "SELECT id FROM t WHERE XMLExists('$d//lineitem/@price > %d' passing d \
     as \"d\")";
    "SELECT id, t2.li FROM t, XMLTable('$d//lineitem[@price > %d]' passing \
     d as \"d\" COLUMNS \"li\" XML BY REF PATH '.') AS t2(li)";
  |]

let gen_sql_case =
  QCheck.Gen.(
    let* docs = list_size (int_range 1 10) gen_doc in
    let* tmpl = int_bound (Array.length sql_templates - 1) in
    let* v = int_bound 9 in
    let* idxs = list_size (int_range 1 3) (int_bound (Array.length index_defs - 1)) in
    let query =
      Scanf.format_from_string sql_templates.(tmpl) "%d" |> fun fmt ->
      Printf.sprintf fmt (v * 30)
    in
    return (docs, query, List.sort_uniq compare idxs))

let arb_sql_case =
  QCheck.make gen_sql_case ~print:(fun (docs, query, idxs) ->
      Printf.sprintf "sql=%s\nindexes=%s\ndocs=\n%s" query
        (String.concat "," (List.map (fun i -> index_defs.(i)) idxs))
        (String.concat "\n" docs))

let run_sql_case (docs, query, idxs) =
  let db = Engine.create () in
  ignore (Helpers.sql db "CREATE TABLE t (id integer, d XML)");
  Engine.load_documents db ~table:"t" ~column:"d" docs;
  List.iter (fun i -> ignore (Helpers.sql db index_defs.(i))) idxs;
  let show r =
    String.concat "\n"
      (List.map
         (fun row ->
           String.concat "|" (List.map Storage.Sql_value.to_display row))
         r.Sqlxml.Sql_exec.rrows)
  in
  let indexed =
    try Ok (show (Helpers.sql db query)) with _ -> Error ()
  in
  Engine.set_use_indexes db false;
  let scanned = try Ok (show (Helpers.sql db query)) with _ -> Error () in
  match (indexed, scanned) with
  | Ok a, Ok b -> a = b
  | Error _, Error _ | Ok _, Error _ -> true
  | Error _, Ok _ -> false

let prop_sql_def1 =
  QCheck.Test.make ~name:"Definition 1 through SQL/XML (XMLEXISTS/XMLTABLE)"
    ~count:200 arb_sql_case run_sql_case

let suite =
  [
    ( "def1:props",
      List.map QCheck_alcotest.to_alcotest [ prop_def1; prop_sql_def1 ] );
  ]
