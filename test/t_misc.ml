(** Remaining coverage: QNames, serializer sequences, string-keyed
    B+Trees, three-valued logic corners, nested analysis shapes. *)

open Helpers

let qname_tests =
  [
    tc "equality ignores prefixes" (fun () ->
        let a = Xdm.Qname.make ~prefix:"a" ~uri:"urn:x" "n" in
        let b = Xdm.Qname.make ~prefix:"b" ~uri:"urn:x" "n" in
        check Alcotest.bool "equal" true (Xdm.Qname.equal a b);
        check Alcotest.int "compare" 0 (Xdm.Qname.compare a b));
    tc "clark notation" (fun () ->
        check Alcotest.string "with ns" "{urn:x}n"
          (Xdm.Qname.to_clark (Xdm.Qname.make ~uri:"urn:x" "n"));
        check Alcotest.string "no ns" "n"
          (Xdm.Qname.to_clark (Xdm.Qname.make "n")));
    tc "display uses prefix" (fun () ->
        check Alcotest.string "p:n" "p:n"
          (Xdm.Qname.to_string (Xdm.Qname.make ~prefix:"p" ~uri:"u" "n")));
  ]

module SB = Btree.Make (String)

let btree_string_tests =
  [
    tc "string keys order lexicographically" (fun () ->
        let t = SB.create ~order:4 () in
        List.iter (fun k -> SB.insert t k ()) [ "pear"; "apple"; "fig"; "kiwi" ];
        check
          Alcotest.(list string)
          "sorted"
          [ "apple"; "fig"; "kiwi"; "pear" ]
          (List.map fst (SB.to_list t)));
    tc "string range scan" (fun () ->
        let t = SB.create ~order:4 () in
        List.iter (fun k -> SB.insert t k ()) [ "a"; "b"; "c"; "d"; "e" ];
        check
          Alcotest.(list string)
          "range" [ "b"; "c"; "d" ]
          (List.map fst (SB.range t ~lo:(SB.Incl "b") ~hi:(SB.Incl "d"))));
  ]

let writer_tests =
  [
    tc "seq_to_string mixes nodes and atomics" (fun () ->
        let seq =
          [
            Xdm.Item.A (Xdm.Atomic.Integer 1L);
            Xdm.Item.N (parse_doc "<a/>");
            Xdm.Item.A (Xdm.Atomic.Str "x");
          ]
        in
        check Alcotest.string "mixed" "1 <a/> x"
          (Xmlparse.Xml_writer.seq_to_string seq));
  ]

let logic3_tests =
  [
    tc "NOT of unknown stays unknown (row filtered)" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer)");
        ignore (sql db "INSERT INTO t VALUES (NULL), (1)");
        (* NOT (a = 1): for NULL → unknown → filtered *)
        check Alcotest.int "rows" 0
          (sql_count db "SELECT a FROM t WHERE NOT a = 1 AND a IS NULL"));
    tc "unknown OR true is true" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer)");
        ignore (sql db "INSERT INTO t VALUES (NULL)");
        check Alcotest.int "rows" 1
          (sql_count db "SELECT a FROM t WHERE a = 1 OR a IS NULL"));
    tc "unknown AND false is false" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer)");
        ignore (sql db "INSERT INTO t VALUES (NULL)");
        check Alcotest.int "rows" 0
          (sql_count db "SELECT a FROM t WHERE a = 1 AND a IS NOT NULL"));
  ]

let analysis_shape_tests =
  [
    tc "nested FLWOR inside for-binding is analyzed" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 30 (fun i -> Printf.sprintf "<a><b>%d</b></a>" i));
        ignore
          (sql db
             "CREATE INDEX ib ON t(d) USING XMLPATTERN '//b' AS DOUBLE");
        let plan =
          assert_def1 db
            "for $x in (for $y in db2-fn:xmlcolumn('T.D')//a[b > 25] \
             return $y) return $x/b"
        in
        check Alcotest.bool "ib used" true
          (List.mem "ib" plan.Planner.indexes_used));
    tc "predicate inside quantifier binding path" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 30 (fun i -> Printf.sprintf "<a><b>%d</b></a>" i));
        ignore
          (sql db
             "CREATE INDEX ib ON t(d) USING XMLPATTERN '//b' AS DOUBLE");
        let plan =
          assert_def1 db
            "some $x in db2-fn:xmlcolumn('T.D')//a[b > 25] satisfies \
             exists($x)"
        in
        check Alcotest.bool "ib used" true
          (List.mem "ib" plan.Planner.indexes_used));
    tc "if-then-else branches OR together" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 30 (fun i -> Printf.sprintf "<a><b>%d</b></a>" i));
        ignore
          (sql db
             "CREATE INDEX ib ON t(d) USING XMLPATTERN '//b' AS DOUBLE");
        let plan =
          assert_def1 db
            "if (1 = 1) then db2-fn:xmlcolumn('T.D')//a[b > 25] else \
             db2-fn:xmlcolumn('T.D')//a[b < 2]"
        in
        (* both branches are leaves: the union restriction is usable *)
        check Alcotest.bool "ib used" true
          (List.mem "ib" plan.Planner.indexes_used));
    tc "deep path with multiple // gaps" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          [
            "<r><x><a><deep><b>9</b></deep></a></x></r>";
            "<r><a><b>1</b></a></r>";
          ];
        ignore
          (sql db
             "CREATE INDEX ib ON t(d) USING XMLPATTERN '//a//b' AS DOUBLE");
        let plan = assert_def1 db "db2-fn:xmlcolumn('T.D')//a//b[. > 5]" in
        check Alcotest.bool "ib used" true
          (List.mem "ib" plan.Planner.indexes_used));
  ]

let suite =
  [
    ("misc:qname", qname_tests);
    ("misc:btree_string", btree_string_tests);
    ("misc:writer", writer_tests);
    ("misc:logic3", logic3_tests);
    ("misc:analysis_shapes", analysis_shape_tests);
  ]
