(** Direct tests of the predicate extractor and the planner's decisions,
    plus the xqdb:between extension (the paper's Section 4 proposal). *)

open Helpers
module P = Eligibility.Predicate

let analyze ?(xml_params = []) src =
  let q = Xquery.Parser.parse_query src in
  let q = Xquery.Static.resolve ~external_vars:(List.map fst xml_params) q in
  Eligibility.Extract.analyze ~xml_params q

let leaves ?xml_params src = P.leaves (analyze ?xml_params src)

let extract_tests =
  [
    tc "value predicate becomes a leaf with a numeric class" (fun () ->
        match leaves "db2-fn:xmlcolumn('T.D')//a[b > 5]" with
        | [ l ] ->
            check Alcotest.string "class" "numeric"
              (P.cmp_class_to_string (P.leaf_class l));
            check Alcotest.string "path" "//a/b"
              (Xmlindex.Pattern.canonical_string l.P.path)
        | ls -> Alcotest.failf "expected 1 leaf, got %d" (List.length ls));
    tc "string literal gives a string class" (fun () ->
        match leaves "db2-fn:xmlcolumn('T.D')//a[b = \"x\"]" with
        | [ l ] ->
            check Alcotest.string "class" "string"
              (P.cmp_class_to_string (P.leaf_class l))
        | _ -> Alcotest.fail "expected 1 leaf");
    tc "path-side cast overrides operand type" (fun () ->
        match leaves "db2-fn:xmlcolumn('T.D')//a[b/xs:double(.) = \"5\"]" with
        | [ l ] ->
            check Alcotest.string "class" "numeric"
              (P.cmp_class_to_string (P.leaf_class l))
        | _ -> Alcotest.fail "expected 1 leaf");
    tc "let binding contributes nothing until consumed" (fun () ->
        let t =
          analyze
            "for $d in db2-fn:xmlcolumn('T.D') let $x := $d//a[b > 5] \
             return <r>{$x}</r>"
        in
        check Alcotest.bool "PTrue" true (t = P.PTrue));
    tc "quantified some binds and filters" (fun () ->
        check Alcotest.int "leaf" 1
          (List.length
             (leaves
                "some $a in db2-fn:xmlcolumn('T.D')//a satisfies $a/b > 5")));
    tc "every does not filter" (fun () ->
        check Alcotest.int "none" 0
          (List.length
             (leaves
                "every $a in db2-fn:xmlcolumn('T.D')//a satisfies $a/b > 5")));
    tc "or produces POr (both sides needed)" (fun () ->
        match analyze "db2-fn:xmlcolumn('T.D')//a[b > 5 or c > 9]" with
        | P.PAnd ts ->
            check Alcotest.bool "has POr" true
              (List.exists (function P.POr _ -> true | _ -> false) ts)
        | P.POr _ -> ()
        | t -> Alcotest.failf "unexpected %s" (P.to_string t));
    tc "fn:not blocks extraction" (fun () ->
        check Alcotest.int "none" 0
          (List.length (leaves "db2-fn:xmlcolumn('T.D')//a[not(b > 5)]")));
    tc "count() in a where clause does not filter" (fun () ->
        check Alcotest.int "none" 0
          (List.length
             (leaves
                "for $d in db2-fn:xmlcolumn('T.D') where count($d//a[b > \
                 5]) = 0 return $d")));
    tc "positional predicates ignored" (fun () ->
        check Alcotest.int "none" 0
          (List.length (leaves "db2-fn:xmlcolumn('T.D')//a[2]")));
    tc "attribute leaf is singleton-anchored" (fun () ->
        match leaves "db2-fn:xmlcolumn('T.D')//a[@p > 5]" with
        | [ l ] -> check Alcotest.bool "singleton" true l.P.singleton_path
        | _ -> Alcotest.fail "expected 1 leaf");
    tc "two separate element paths are not singleton" (fun () ->
        let ls =
          leaves "db2-fn:xmlcolumn('T.D')//a[b/c > 5 and b/c < 9]"
        in
        check Alcotest.int "two leaves" 2 (List.length ls);
        List.iter
          (fun l -> check Alcotest.bool "not singleton" false l.P.singleton_path)
          ls);
    tc "external XML parameter roots paths (SQL PASSING)" (fun () ->
        match
          leaves ~xml_params:[ ("d", "T.D") ] "$d//a[b > 5]"
        with
        | [ l ] -> check Alcotest.string "coll" "T.D" l.P.collection
        | _ -> Alcotest.fail "expected 1 leaf");
    tc "xqdb:between extracts a mergeable pair (paper §4 extension)"
      (fun () ->
        let ls =
          leaves
            "db2-fn:xmlcolumn('T.D')//a[xqdb:between(price, 100, 200)]"
        in
        check Alcotest.int "two leaves" 2 (List.length ls);
        List.iter
          (fun l ->
            check Alcotest.bool "singleton-safe" true l.P.singleton_path)
          ls;
        match ls with
        | [ a; b ] -> check Alcotest.bool "same anchor" true (a.P.anchor = b.P.anchor)
        | _ -> ());
  ]

let between_fn_tests =
  [
    tc "xqdb:between is existential over the range" (fun () ->
        let colls =
          [ ("T.D", [ "<a><price>250</price><price>50</price></a>";
                      "<a><price>150</price></a>" ]) ]
        in
        check Alcotest.string "only the in-range doc" "1"
          (xq_str ~collections:colls
             "count(db2-fn:xmlcolumn('T.D')//a[xqdb:between(price, 100, \
              200)])"));
    tc "xqdb:between single merged scan via index (Definition 1)" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 100 (fun i ->
               Printf.sprintf "<a><price>%d</price><price>%d</price></a>"
                 (i * 7 mod 300)
                 ((i * 13) mod 300)));
        ignore
          (sql db
             "CREATE INDEX pe ON t(d) USING XMLPATTERN '//price' AS DOUBLE");
        let q =
          "db2-fn:xmlcolumn('T.D')//a[xqdb:between(price, 100, 120)]"
        in
        let plan = assert_def1 db q in
        check Alcotest.bool "merged into one scan" true
          (List.exists
             (fun n -> contains_sub ~affix:"BETWEEN merged" n)
             plan.Planner.notes));
    tc "xqdb:between rejects non-singleton bounds" (fun () ->
        expect_error "XPTY0004" (fun () ->
            xq "xqdb:between(5, (1,2), 10)"));
  ]

let planner_tests =
  [
    tc "IXAND intersects multiple probes" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 60 (fun i ->
               Printf.sprintf "<a><b>%d</b><c>%d</c></a>" (i mod 10)
                 (i mod 6)));
        ignore
          (sql db
             "CREATE INDEX ib ON t(d) USING XMLPATTERN '//b' AS DOUBLE");
        ignore
          (sql db
             "CREATE INDEX ic ON t(d) USING XMLPATTERN '//c' AS DOUBLE");
        let plan =
          assert_def1 db "db2-fn:xmlcolumn('T.D')//a[b = 3 and c = 3]"
        in
        check Alcotest.bool "IXAND note" true
          (List.exists
             (fun n -> contains_sub ~affix:"IXAND" n)
             plan.Planner.notes);
        check Alcotest.int "both used" 2
          (List.length plan.Planner.indexes_used));
    tc "IXOR unions or-branches when both sides eligible" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 40 (fun i -> Printf.sprintf "<a><b>%d</b></a>" i));
        ignore
          (sql db
             "CREATE INDEX ib ON t(d) USING XMLPATTERN '//b' AS DOUBLE");
        let plan =
          assert_def1 db "db2-fn:xmlcolumn('T.D')//a[b = 3 or b = 7]"
        in
        check Alcotest.bool "IXOR note" true
          (List.exists
             (fun n -> contains_sub ~affix:"IXOR" n)
             plan.Planner.notes));
    tc "or with one ineligible branch falls back to scan" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 20 (fun i ->
               Printf.sprintf "<a><b>%d</b><c>x%d</c></a>" i i));
        ignore
          (sql db
             "CREATE INDEX ib ON t(d) USING XMLPATTERN '//b' AS DOUBLE");
        let plan =
          assert_def1 db
            "db2-fn:xmlcolumn('T.D')//a[b = 3 or c = \"x5\"]"
        in
        (* the eligible branch may be probed before the ineligible sibling
           is discovered, but no restriction may be applied *)
        check Alcotest.int "no restriction" 0
          (List.length plan.Planner.restrictions));
    tc "semi-join reduction: whole-collection join operand evaluated"
      (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        ignore (sql db "CREATE TABLE u (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 50 (fun i -> Printf.sprintf "<a><k>%d</k></a>" i));
        Engine.load_documents db ~table:"u" ~column:"d"
          [ "<w><k>7</k></w>"; "<w><k>13</k></w>" ];
        ignore
          (sql db
             "CREATE INDEX tk ON t(d) USING XMLPATTERN '//k' AS DOUBLE");
        let plan =
          assert_def1 db
            "db2-fn:xmlcolumn('T.D')//a[k/xs:double(.) = \
             db2-fn:xmlcolumn('U.D')//k/xs:double(.)]"
        in
        check Alcotest.bool "join probe" true
          (List.exists
             (fun n -> contains_sub ~affix:"join probe" n)
             plan.Planner.notes));
    tc "date index serves date-cast predicates" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 30 (fun i ->
               Printf.sprintf "<a><when>200%d-0%d-15</when></a>" (i mod 7)
                 (1 + (i mod 9))));
        ignore
          (sql db
             "CREATE INDEX dw ON t(d) USING XMLPATTERN '//when' AS DATE");
        let plan =
          assert_def1 db
            "db2-fn:xmlcolumn('T.D')//a[when/xs:date(.) >= \
             xs:date(\"2004-01-01\")]"
        in
        check Alcotest.bool "dw used" true
          (List.mem "dw" plan.Planner.indexes_used));
  ]

let workload_tests =
  [
    tc "generators are deterministic per seed" (fun () ->
        let a = Workload.Orders_gen.orders Workload.Orders_gen.default 5 in
        let b = Workload.Orders_gen.orders Workload.Orders_gen.default 5 in
        check Alcotest.(list string) "same" a b);
    tc "different seeds differ" (fun () ->
        let a = Workload.Orders_gen.orders Workload.Orders_gen.default 5 in
        let b =
          Workload.Orders_gen.orders
            { Workload.Orders_gen.default with seed = 7 }
            5
        in
        check Alcotest.bool "differ" true (a <> b));
    tc "all generated orders parse" (fun () ->
        List.iter
          (fun x -> ignore (parse_doc x))
          (Workload.Orders_gen.orders
             { Workload.Orders_gen.default with
               multi_price_frac = 0.3;
               string_price_frac = 0.3;
               missing_price_frac = 0.2;
               multi_id_frac = 0.2;
             }
             50));
    tc "feeds parse and carry extension namespaces" (fun () ->
        let feeds = Workload.Feeds_gen.feeds Workload.Feeds_gen.default 20 in
        List.iter (fun x -> ignore (parse_doc x)) feeds;
        check Alcotest.bool "some dc:creator" true
          (List.exists
             (fun f -> contains_sub ~affix:"dc:creator" f)
             feeds));
    tc "zipf sampling stays in range and skews low" (fun () ->
        let rng = Workload.Rand.create 5 in
        let samples = List.init 500 (fun _ -> Workload.Rand.zipf rng ~n:50 ~s:1.2) in
        List.iter
          (fun k -> check Alcotest.bool "in range" true (k >= 1 && k <= 50))
          samples;
        let ones = List.length (List.filter (fun k -> k = 1) samples) in
        check Alcotest.bool "rank 1 most frequent" true (ones > 50));
    tc "addresses: canadian_frac controls code shapes" (fun () ->
        let all_us = Workload.Feeds_gen.addresses ~canadian_frac:0.0 50 in
        check Alcotest.bool "all numeric" true
          (List.for_all
             (fun d ->
               not (contains_sub ~affix:"postalcode>K" d)
               || not (contains_sub ~affix:" " d))
             all_us));
  ]

let suite =
  [
    ("extract:predicates", extract_tests);
    ("extract:between_fn", between_fn_tests);
    ("planner:decisions", planner_tests);
    ("workload:generators", workload_tests);
  ]
