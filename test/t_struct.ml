(** Differential structural-join ≡ tree-walk harness.

    The structural (pre/post) index answers predicate-free axis
    pipelines as array joins; the tree-walk evaluator answers the same
    queries by navigation. The two must be byte-identical on every axis
    — forward, reverse and sibling — over the paper corpus and over
    qcheck-random documents, at parallelism 1, 2 and 4. The plan must
    say which path ran ([PSTRUCTJOIN ...] vs [nav-axis: ...] notes), the
    Xprof counters must charge the structural probes, and
    [Engine.check_consistency] must hold the encodings to the interval
    laws throughout. *)

open Helpers

let levels = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

(** The paper database plus a structural index on each XML column. *)
let mk_db () =
  let db = paper_db ~n_orders:60 () in
  ignore (sql db "CREATE STRUCTURAL INDEX s_ord ON orders(orddoc)");
  ignore (sql db "CREATE STRUCTURAL INDEX s_cust ON customer(cdoc)");
  db

let shared_db = lazy (mk_db ())

(** Hand-written documents exercising the encoding's corners: nested
    same-name elements, attributes at every depth, text/comment/PI
    nodes, single-child chains and wide fan-out. *)
let special_docs =
  [
    "<a x=\"1\"><b y=\"2\"><a x=\"3\"><c/></a></b><b/><c z=\"4\">t</c></a>";
    "<r><!--c--><?pi data?><e>text<e>nested</e></e><e/></r>";
    "<one><two><three><four a=\"deep\"/></three></two></one>";
    "<w><k/><k/><k/><k/><k/><k/><k/><k/></w>";
    "<m a=\"1\" b=\"2\" c=\"3\"><n d=\"4\"/>mixed<n/></m>";
  ]

let mk_special_db () =
  let db = Engine.create () in
  ignore (sql db "CREATE TABLE t (id integer, doc XML)");
  Engine.load_documents db ~table:"t" ~column:"doc" special_docs;
  ignore (sql db "CREATE STRUCTURAL INDEX s_t ON t(doc)");
  db

let special_db = lazy (mk_special_db ())

(* ------------------------------------------------------------------ *)
(* Differential driver                                                 *)
(* ------------------------------------------------------------------ *)

let render (o : Engine.outcome) : string =
  match o.Engine.payload with
  | Engine.Items items -> Engine.to_xml items
  | Engine.Rows { cols; rows } ->
      String.concat "|" cols ^ "\n"
      ^ String.concat "\n"
          (List.map
             (fun r ->
               String.concat "|" (List.map Storage.Sql_value.to_display r))
             rows)

let snapshot ~indexes ~par db (src : string) : string =
  Engine.set_use_indexes db indexes;
  Engine.set_parallelism db par;
  Fun.protect
    ~finally:(fun () ->
      Engine.set_use_indexes db true;
      Engine.set_parallelism db 1)
    (fun () ->
      match Engine.exec db src with
      | o -> render o
      | exception Xdm.Xerror.Error { code; _ } -> "ERROR " ^ code)

(** Structural (indexes on) ≡ navigational (indexes off) at every
    parallelism level, byte-identical. *)
let assert_struct_diff db (id : string) (src : string) =
  let base = snapshot ~indexes:false ~par:1 db src in
  List.iter
    (fun par ->
      check Alcotest.string
        (Printf.sprintf "%s: structural par=%d ≡ tree-walk" id par)
        base
        (snapshot ~indexes:true ~par db src);
      if par <> 1 then
        check Alcotest.string
          (Printf.sprintf "%s: tree-walk par=%d ≡ par=1" id par)
          base
          (snapshot ~indexes:false ~par db src))
    levels

(* ------------------------------------------------------------------ *)
(* Axis corpus: every axis, structural shape and fallback shapes        *)
(* ------------------------------------------------------------------ *)

let orders = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"

let axis_corpus =
  [
    (* forward axes *)
    ("child-chain", orders ^ "/order/lineitem");
    ("descendant", orders ^ "//product");
    ("desc-or-self", orders ^ "/order/descendant-or-self::*");
    ("self", orders ^ "/order/self::order");
    ("self-star", orders ^ "/order/self::*");
    ("attr", orders ^ "//lineitem/@price");
    ("attr-star", orders ^ "/order/@*");
    (* reverse axes — tree-walk-only before the structural index *)
    ("parent-star", orders ^ "//product/parent::*");
    ("parent-named", orders ^ "//id/parent::product");
    ("parent-node", orders ^ "//quantity/parent::node()");
    ("ancestor", orders ^ "//id/ancestor::*");
    ("ancestor-named", orders ^ "//id/ancestor::lineitem");
    ("ancestor-or-self", orders ^ "//product/ancestor-or-self::*");
    ("attr-parent", orders ^ "//lineitem/@price/parent::*");
    (* sibling axes *)
    ("following-sibling", orders ^ "/order/lineitem/following-sibling::*");
    ( "following-sibling-named",
      orders ^ "/order/lineitem/following-sibling::lineitem" );
    ("preceding-sibling", orders ^ "/order/lineitem/preceding-sibling::*");
    ( "preceding-sibling-named",
      orders ^ "/order/custid/preceding-sibling::lineitem" );
    (* chains mixing directions *)
    ("down-up-down", orders ^ "//id/ancestor::lineitem/@price");
    ("up-then-sibling", orders ^ "//product/parent::lineitem/following-sibling::*");
    ("deep-mix", orders ^ "//id/parent::product/parent::lineitem/parent::order/custid");
    (* kind tests *)
    ("text-nodes", orders ^ "//custid/descendant-or-self::text()");
    ("any-node", orders ^ "/order/node()");
    (* shapes the structural path must decline (predicates, FLWOR) and
       answer navigationally with identical bytes *)
    ("pred-fallback", orders ^ "//lineitem[@price > 500]/parent::order");
    ( "flwor-fallback",
      "for $p in " ^ orders ^ "//product/parent::lineitem return $p/@price" );
    ("count-fallback", "count(" ^ orders ^ "//product/parent::*)");
  ]

let special = "db2-fn:xmlcolumn('T.DOC')"

let special_corpus =
  [
    ("sp-desc-a", special ^ "//a");
    ("sp-nested-same-name", special ^ "//e//e");
    ("sp-desc-or-self-nested", special ^ "//a/descendant-or-self::a");
    ("sp-anc-nested", special ^ "//c/ancestor::*");
    ("sp-anc-or-self-nested", special ^ "//a/ancestor-or-self::a");
    ("sp-parent", special ^ "//*/parent::*");
    ("sp-attr-everywhere", special ^ "//@*");
    ("sp-attr-parent", special ^ "//@x/parent::*");
    ("sp-attr-self", special ^ "//@x/descendant-or-self::node()");
    ("sp-text", special ^ "//e/text()");
    ("sp-comment", special ^ "/r/comment()");
    ("sp-pi", special ^ "/r/processing-instruction()");
    ("sp-node", special ^ "//node()");
    ("sp-sib-wide", special ^ "/w/k/following-sibling::k");
    ("sp-presib-wide", special ^ "/w/k/preceding-sibling::k");
    ("sp-sib-mixed", special ^ "/m/n/following-sibling::node()");
    ("sp-presib-mixed", special ^ "/m/n/preceding-sibling::node()");
    ("sp-chain-deep", special ^ "//four/ancestor::*/child::*");
  ]

let corpus_tests =
  [
    tc "every axis: structural ≡ tree-walk at parallelism 1/2/4" (fun () ->
        let db = Lazy.force shared_db in
        List.iter (fun (id, src) -> assert_struct_diff db id src) axis_corpus);
    tc "special documents: structural ≡ tree-walk at parallelism 1/2/4"
      (fun () ->
        let db = Lazy.force special_db in
        List.iter
          (fun (id, src) -> assert_struct_diff db id src)
          special_corpus);
  ]

(* ------------------------------------------------------------------ *)
(* Plan surface: PSTRUCTJOIN notes, nav-axis notes, counters, DDL       *)
(* ------------------------------------------------------------------ *)

let plan_tests =
  [
    tc "eligible reverse-axis query shows the structural join in EXPLAIN"
      (fun () ->
        let db = Lazy.force shared_db in
        let _, plan = xquery db (orders ^ "//lineitem/parent::*") in
        check Alcotest.bool "PSTRUCTJOIN note present" true
          (List.exists (contains_sub ~affix:"PSTRUCTJOIN") plan.Planner.notes);
        check Alcotest.bool "parent axis step noted" true
          (List.exists (contains_sub ~affix:"parent::*") plan.Planner.notes);
        check Alcotest.bool "s_ord in indexes_used" true
          (List.mem "s_ord" (used plan)));
    tc "ineligible shape (predicate) falls back with a nav-axis note"
      (fun () ->
        let db = Lazy.force shared_db in
        let _, plan =
          xquery db (orders ^ "//lineitem[@price > 500]/parent::order")
        in
        check Alcotest.bool "no PSTRUCTJOIN note" false
          (List.exists (contains_sub ~affix:"PSTRUCTJOIN") plan.Planner.notes);
        check Alcotest.bool "nav-axis note present" true
          (List.exists
             (contains_sub ~affix:"nav-axis: parent (tree-walk)")
             plan.Planner.notes));
    tc "without a structural index the reverse axis notes nav-axis"
      (fun () ->
        let db = paper_db ~n_orders:5 () in
        let _, plan = xquery db (orders ^ "//product/parent::*") in
        check Alcotest.bool "no PSTRUCTJOIN note" false
          (List.exists (contains_sub ~affix:"PSTRUCTJOIN") plan.Planner.notes);
        check Alcotest.bool "nav-axis note present" true
          (List.exists
             (contains_sub ~affix:"nav-axis: parent (tree-walk)")
             plan.Planner.notes));
    tc "\\indexes off suppresses the structural join" (fun () ->
        let db = Lazy.force shared_db in
        Engine.set_use_indexes db false;
        Fun.protect
          ~finally:(fun () -> Engine.set_use_indexes db true)
          (fun () ->
            let _, plan = xquery db (orders ^ "//product/parent::*") in
            check Alcotest.bool "no PSTRUCTJOIN when indexes are off" false
              (List.exists
                 (contains_sub ~affix:"PSTRUCTJOIN")
                 plan.Planner.notes)));
    tc "struct_probes counter charges under profiling" (fun () ->
        let db = mk_db () in
        Engine.set_profiling db true;
        Fun.protect
          ~finally:(fun () -> Engine.set_profiling db false)
          (fun () ->
            ignore (Engine.exec db (orders ^ "//product/parent::*"));
            let probes =
              List.assoc_opt "struct_probes"
                (Xprof.counters (Engine.profile db))
            in
            match probes with
            | Some n when n > 0 -> ()
            | _ -> Alcotest.fail "struct_probes not charged"));
    tc "cursor over a structural query streams the same items" (fun () ->
        let db = Lazy.force shared_db in
        let src = orders ^ "//product/parent::lineitem/@price" in
        let cur = Engine.open_cursor db src in
        let rec drain acc =
          match Engine.Cursor.next cur with
          | Some (Engine.Cursor.Item it) -> drain (it :: acc)
          | Some (Engine.Cursor.Row _) -> Alcotest.fail "row from XQuery cursor"
          | None -> List.rev acc
        in
        let streamed = drain [] in
        Engine.Cursor.close cur;
        let strict = Engine.outcome_items (Engine.exec db src) in
        check Alcotest.string "cursor ≡ strict" (Engine.to_xml strict)
          (Engine.to_xml streamed));
    tc "DROP INDEX removes the structural index and its catalog entry"
      (fun () ->
        let db = mk_db () in
        check Alcotest.int "two structural indexes" 2
          (List.length (Engine.struct_indexes db));
        ignore (sql db "DROP INDEX s_cust");
        check Alcotest.int "one left" 1
          (List.length (Engine.struct_indexes db));
        let _, plan = xquery db (orders ^ "//product/parent::*") in
        check Alcotest.bool "survivor still serves orders" true
          (List.mem "s_ord" (used plan));
        ignore (sql db "DROP INDEX s_ord");
        let _, plan = xquery db (orders ^ "//product/parent::*") in
        check Alcotest.bool "no structural join after drop" false
          (List.exists (contains_sub ~affix:"PSTRUCTJOIN") plan.Planner.notes));
    tc "catalog generation bumps on CREATE STRUCTURAL INDEX (plan cache)"
      (fun () ->
        let db = paper_db ~n_orders:5 () in
        let src = orders ^ "//product/parent::*" in
        let _, plan = xquery db src in
        check Alcotest.bool "tree-walk before the index" false
          (List.exists (contains_sub ~affix:"PSTRUCTJOIN") plan.Planner.notes);
        ignore (sql db "CREATE STRUCTURAL INDEX s_o ON orders(orddoc)");
        let _, plan = xquery db src in
        check Alcotest.bool "same statement text replans structurally" true
          (List.exists (contains_sub ~affix:"PSTRUCTJOIN") plan.Planner.notes));
    tc "advisor tip 14 suggests a structural index, and stops once built"
      (fun () ->
        let db = paper_db ~n_orders:5 () in
        let src = orders ^ "//product/parent::*" in
        let tips = List.map (fun a -> a.Engine.Advisor.tip) (Engine.advise db src) in
        check Alcotest.bool "tip 14 before the index" true (List.mem 14 tips);
        ignore (sql db "CREATE STRUCTURAL INDEX s_o ON orders(orddoc)");
        let tips = List.map (fun a -> a.Engine.Advisor.tip) (Engine.advise db src) in
        check Alcotest.bool "tip 14 gone after the index" false
          (List.mem 14 tips));
    tc "check_consistency validates the structural encodings" (fun () ->
        let db = mk_db () in
        ignore (sql db "INSERT INTO orders VALUES (990, '<order><lineitem \
                        quantity=\"1\"/></order>')");
        List.iter
          (fun (iname, diffs) ->
            check Alcotest.(list string) (iname ^ " consistent") [] diffs)
          (Engine.check_consistency db);
        check Alcotest.bool "structural indexes among the reports" true
          (List.mem_assoc "s_ord" (Engine.check_consistency db)));
  ]

(* ------------------------------------------------------------------ *)
(* Property: random documents × random axis pipelines                   *)
(* ------------------------------------------------------------------ *)

(** Random XML document: small tag/attribute alphabet so axis steps hit,
    with text, comments and nested same-name elements. *)
let gen_doc : string QCheck.Gen.t =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  let attr = oneofl [ "x"; "y" ] in
  let rec node fuel =
    let* t = tag in
    let* nattrs = int_bound 2 in
    let* named =
      list_repeat nattrs
        (let* a = attr in
         let* v = int_bound 9 in
         return (a, v))
    in
    (* distinct attribute names only *)
    let attrs =
      List.map (fun (a, v) -> Printf.sprintf " %s=\"%d\"" a v)
        (List.sort_uniq (fun (a, _) (b, _) -> compare a b) named)
    in
    let* nkids = if fuel = 0 then return 0 else int_bound 3 in
    let* kids =
      list_repeat nkids
        (frequency
           [
             (4, node (fuel - 1));
             (1, return "leaf");
             (1, return "<!--note-->");
           ])
    in
    return
      (Printf.sprintf "<%s%s>%s</%s>" t (String.concat "" attrs)
         (String.concat "" kids) t)
  in
  node 3

let axis_names =
  [|
    "child";
    "descendant";
    "self";
    "descendant-or-self";
    "attribute";
    "parent";
    "ancestor";
    "ancestor-or-self";
    "following-sibling";
    "preceding-sibling";
  |]

let test_names = [| "*"; "a"; "b"; "c"; "x"; "node()"; "text()" |]

let gen_steps : string QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 3 in
  let* steps =
    list_repeat n
      (let* a = int_bound (Array.length axis_names - 1) in
       let* t = int_bound (Array.length test_names - 1) in
       return (Printf.sprintf "/%s::%s" axis_names.(a) test_names.(t)))
  in
  return (String.concat "" steps)

let gen_case =
  QCheck.Gen.(
    let* ndocs = int_range 1 5 in
    let* docs = list_repeat ndocs gen_doc in
    let* steps = gen_steps in
    let* par = oneofl levels in
    return (docs, steps, par))

let arb_case =
  QCheck.make gen_case ~print:(fun (docs, steps, par) ->
      Printf.sprintf "docs=[%s] query=%s%s par=%d" (String.concat " " docs)
        special steps par)

let prop_structural_equiv_nav =
  QCheck.Test.make ~count:60
    ~name:"random docs × random axis pipeline: structural ≡ navigational"
    arb_case
    (fun (docs, steps, par) ->
      let db = Engine.create () in
      ignore (sql db "CREATE TABLE t (id integer, doc XML)");
      Engine.load_documents db ~table:"t" ~column:"doc" docs;
      ignore (sql db "CREATE STRUCTURAL INDEX s_t ON t(doc)");
      let src = special ^ steps in
      let nav = snapshot ~indexes:false ~par:1 db src in
      let st = snapshot ~indexes:true ~par db src in
      (* the shape is always bare axis steps: the structural join must
         actually have served it (not silently fallen back) *)
      let o = Engine.exec db src in
      st = nav
      && List.exists (contains_sub ~affix:"PSTRUCTJOIN") o.Engine.notes
      && List.for_all
           (fun (_, diffs) -> diffs = [])
           (Engine.check_consistency db))

let suite =
  [
    ("struct:corpus", corpus_tests);
    ("struct:plan", plan_tests);
    ("struct:props", [ QCheck_alcotest.to_alcotest prop_structural_equiv_nav ]);
  ]
