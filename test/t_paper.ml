(** End-to-end reproduction of the paper's Queries 1–30: results, index
    eligibility and EXPLAIN behaviour, one test per query (or pair). *)

open Helpers
module SV = Storage.Sql_value

(* A database with the paper's schema, the paper's indexes, and enough
   deterministic data for every query to have non-trivial results. *)
let mk_db () =
  let db = paper_db ~n_orders:80 () in
  ignore
    (sql db
       "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
        '//lineitem/@price' AS DOUBLE");
  ignore
    (sql db
       "CREATE INDEX o_custid ON orders(orddoc) USING XMLPATTERN '//custid' \
        AS DOUBLE");
  ignore
    (sql db
       "CREATE INDEX c_custid ON customer(cdoc) USING XMLPATTERN \
        '/customer/id' AS DOUBLE");
  ignore
    (sql db
       "CREATE INDEX li_pid ON orders(orddoc) USING XMLPATTERN \
        '//lineitem/product/id' AS VARCHAR(20)");
  db

let db = lazy (mk_db ())

let uses_index plan name = List.mem name (used plan)

let q1_30 =
  [
    tc "Query 1: //order[lineitem/@price>100] uses li_price" (fun () ->
        let db = Lazy.force db in
        let plan =
          assert_def1 db
            "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>100] return $i"
        in
        check Alcotest.bool "li_price used" true (uses_index plan "li_price"));
    tc "Query 2: @* wildcard makes li_price ineligible" (fun () ->
        let db = Lazy.force db in
        let plan =
          assert_def1 db
            "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>100] return $i"
        in
        check Alcotest.bool "no index" false (uses_index plan "li_price");
        check Alcotest.bool "reason logged" true
          (List.exists
             (fun n ->
               Helpers.contains_sub ~affix:"more restrictive" n
               || Helpers.contains_sub ~affix:"does not contain" n)
             plan.Planner.notes));
    tc "paper 2.2: missing-price document kept by Query 2, skipped by index"
      (fun () ->
        (* the no-price document must appear in Query 2's answer *)
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE orders (ordid integer, orddoc XML)");
        Engine.load_documents db ~table:"orders" ~column:"orddoc"
          [
            Workload.Orders_gen.no_price_doc;
            "<order><lineitem price=\"99.50\" quantity=\"150\"/></order>";
          ];
        ignore
          (sql db
             "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
              '//lineitem/@price' AS DOUBLE");
        let r, _ =
          xquery db
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>100]"
        in
        check Alcotest.int "both orders qualify" 2 (List.length r));
    tc "Query 3: string literal \"100\" → string predicate, double index \
        ineligible" (fun () ->
        let db = Lazy.force db in
        let plan =
          assert_def1 db
            "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \"100\" ] return $i"
        in
        check Alcotest.bool "no li_price" false (uses_index plan "li_price"));
    tc "Query 4: join with xs:double(.) casts on both sides" (fun () ->
        let db = Lazy.force db in
        let src =
          "for $i in db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")/order \
           for $j in db2-fn:xmlcolumn(\"CUSTOMER.CDOC\")/customer \
           where $i/custid/xs:double(.) = $j/id/xs:double(.) \
           return $i/@id/data(.)"
        in
        let plan = assert_def1 db src in
        (* both sides' indexes are declared eligible (join probes) *)
        check Alcotest.bool "join noted" true
          (List.exists
             (fun n -> Helpers.contains_sub ~affix:"join" n)
             plan.Planner.notes));
    tc "Query 5: XMLQuery in select list returns one row per order, no \
        index" (fun () ->
        let db = Lazy.force db in
        let n =
          sql_count db
            "SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc \
             as \"order\") FROM orders"
        in
        check Alcotest.int "all rows" 80 n;
        check Alcotest.(list string) "no index" [] (last_indexes_used db));
    tc "Query 6: VALUES XMLQuery over the whole column is one row and \
        indexable" (fun () ->
        let db = Lazy.force db in
        let r =
          sql db
            "VALUES (XMLQuery('db2-fn:xmlcolumn(\"ORDERS.ORDDOC\") \
             //lineitem[@price > 100] '))"
        in
        check Alcotest.int "one row" 1 (List.length r.Sqlxml.Sql_exec.rrows);
        check Alcotest.bool "li_price" true
          (List.mem "li_price" (last_indexes_used db)));
    tc "Query 7: stand-alone XQuery returns one row per lineitem" (fun () ->
        let db = Lazy.force db in
        let plan =
          assert_def1 db
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')// lineitem[@price > 100]"
        in
        check Alcotest.bool "li_price" true (uses_index plan "li_price"));
    tc "Query 8: XMLExists filters rows and uses li_price" (fun () ->
        let db = Lazy.force db in
        let n8 =
          sql_count db
            "SELECT ordid, orddoc FROM orders WHERE \
             XMLExists('$order//lineitem[@price > 100]' passing orddoc as \
             \"order\")"
        in
        check Alcotest.bool "li_price" true
          (List.mem "li_price" (last_indexes_used db));
        check Alcotest.bool "filters" true (n8 < 80 && n8 > 0));
    tc "Query 9: boolean inside XMLExists returns ALL rows" (fun () ->
        let db = Lazy.force db in
        let n9 =
          sql_count db
            "SELECT ordid, orddoc FROM orders WHERE \
             XMLExists('$order//lineitem/@price > 100' passing orddoc as \
             \"order\")"
        in
        check Alcotest.int "all 80 rows" 80 n9;
        check Alcotest.(list string) "no index" [] (last_indexes_used db));
    tc "Query 10: XMLExists + XMLQuery combination filters" (fun () ->
        let db = Lazy.force db in
        let n =
          sql_count db
            "SELECT ordid, XMLQuery('$order//lineitem[@price > 100]' passing \
             orddoc as \"order\") FROM orders WHERE \
             XMLExists('$order//lineitem[@price > 100]' passing orddoc as \
             \"order\")"
        in
        check Alcotest.bool "filters" true (n < 80);
        check Alcotest.bool "li_price" true
          (List.mem "li_price" (last_indexes_used db)));
    tc "Query 11: XMLTable row-producer is index eligible; one row per \
        lineitem" (fun () ->
        let db = Lazy.force db in
        let n11 =
          sql_count db
            "SELECT o.ordid, t.lineitem FROM orders o, XMLTable('$order \
             //lineitem[@price > 100]' passing o.orddoc as \"order\" COLUMNS \
             \"lineitem\" XML BY REF PATH '.') as t(lineitem)"
        in
        check Alcotest.bool "li_price" true
          (List.mem "li_price" (last_indexes_used db));
        (* more lineitems than qualifying orders *)
        let n8 =
          sql_count db
            "SELECT ordid FROM orders WHERE XMLExists('$order \
             //lineitem[@price > 100]' passing orddoc as \"order\")"
        in
        check Alcotest.bool "lineitem-cardinality" true (n11 >= n8));
    tc "Query 12: predicate in COLUMNS gives NULLs, not filtering" (fun () ->
        let db = Lazy.force db in
        let r =
          sql db
            "SELECT o.ordid, t.lineitem, t.price FROM orders o, \
             XMLTable('$order//lineitem' passing o.orddoc as \"order\" \
             COLUMNS \"lineitem\" XML BY REF PATH '.', \"price\" \
             DECIMAL(6,3) PATH '@price[. > 100]') as t(lineitem, price)"
        in
        check Alcotest.(list string) "no index" [] (last_indexes_used db);
        let nulls =
          List.length
            (List.filter
               (fun row -> List.nth row 2 = SV.Null)
               r.Sqlxml.Sql_exec.rrows)
        in
        check Alcotest.bool "some NULL prices" true (nulls > 0));
    tc "Query 13: XQuery-side join uses the XML index (li_pid)" (fun () ->
        let db = Lazy.force db in
        let n =
          sql_count db
            "SELECT p.name, XMLQuery('$order//lineitem' passing orddoc as \
             \"order\") FROM products p, orders o WHERE XMLExists('$order \
             //lineitem/product[id eq $pid]' passing o.orddoc as \"order\", \
             p.id as \"pid\")"
        in
        check Alcotest.bool "rows" true (n > 0);
        check Alcotest.bool "li_pid used" true
          (List.mem "li_pid" (last_indexes_used db)));
    tc "Query 14: SQL-side join via XMLCast fails on multi-lineitem orders"
      (fun () ->
        let db = Lazy.force db in
        (* orders have several lineitems: XMLCast hits a multi-item
           sequence and raises, exactly the paper's warning *)
        match
          sql db
            "SELECT p.name FROM products p, orders o WHERE p.id = \
             XMLCast(XMLQuery('$order//lineitem/product/id' passing \
             o.orddoc as \"order\") as VARCHAR(13))"
        with
        | _ -> Alcotest.fail "expected an XMLCast type error"
        | exception Xdm.Xerror.Error e ->
            check Alcotest.string "coded" "XQDB0003" e.code;
            check Alcotest.bool "singleton error" true
              (Helpers.contains_sub ~affix:"more than one item" e.msg));
    tc "Query 14b: VARCHAR(13) length failure mode" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE orders (ordid integer, orddoc XML)");
        Engine.load_documents db ~table:"orders" ~column:"orddoc"
          [ "<order><lineitem><product><id>id-that-is-way-too-long</id></product></lineitem></order>" ];
        match
          sql db
            "SELECT ordid FROM orders o WHERE 'x' = \
             XMLCast(XMLQuery('$order//lineitem/product/id' passing \
             o.orddoc as \"order\") as VARCHAR(13))"
        with
        | _ -> Alcotest.fail "expected a length error"
        | exception Xdm.Xerror.Error e ->
            check Alcotest.string "coded" "XQDB0003" e.code;
            check Alcotest.bool "length error" true
              (Helpers.contains_sub ~affix:"too long" e.msg));
    tc "Query 15: SQL-side XML-XML join uses no index" (fun () ->
        let db = Lazy.force db in
        let n =
          sql_count db
            "SELECT c.cid FROM orders o, customer c WHERE \
             XMLCast(XMLQuery('$order/order/custid' passing o.orddoc as \
             \"order\") as DOUBLE) = XMLCast(XMLQuery('$cust/customer/id' \
             passing c.cdoc as \"cust\") as DOUBLE)"
        in
        check Alcotest.int "joined rows" 80 n;
        check Alcotest.(list string) "no index" [] (last_indexes_used db));
    tc "Query 16: XQuery-side XML-XML join probes c_custid per order"
      (fun () ->
        let db = Lazy.force db in
        let n =
          sql_count db
            "SELECT c.cid FROM orders o, customer c WHERE \
             XMLExists('$order/order[custid/xs:double(.) = \
             $cust/customer/id/xs:double(.)]' passing o.orddoc as \
             \"order\", c.cdoc as \"cust\")"
        in
        check Alcotest.int "same answer as Query 15" 80 n;
        check Alcotest.bool "c_custid used" true
          (List.mem "c_custid" (last_indexes_used db)));
    tc "Query 17 vs 18: for is indexable, let is not (Section 3.4)"
      (fun () ->
        let db = Lazy.force db in
        let p17 =
          assert_def1 db
            "for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') for $item in \
             $doc//lineitem[@price > 100] return <result>{$item}</result>"
        in
        check Alcotest.bool "17 uses li_price" true (uses_index p17 "li_price");
        let p18 =
          assert_def1 db
            "for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') let $item := \
             $doc//lineitem[@price > 100] return <result>{$item}</result>"
        in
        check Alcotest.(list string) "18 uses nothing" [] (used p18));
    tc "Queries 17/18 return different results (result per lineitem vs per \
        document)" (fun () ->
        let db = Lazy.force db in
        let r17, _ =
          xquery db
            "for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') for $item in \
             $doc//lineitem[@price > 100] return <result>{$item}</result>"
        in
        let r18, _ =
          xquery db
            "for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') let $item := \
             $doc//lineitem[@price > 100] return <result>{$item}</result>"
        in
        check Alcotest.int "18: one per document" 80 (List.length r18);
        check Alcotest.bool "17: per lineitem" true
          (List.length r17 <> List.length r18));
    tc "Query 19: constructor in return blocks the index" (fun () ->
        let db = Lazy.force db in
        let p =
          assert_def1 db
            "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
             <result>{$ord/lineitem[@price > 100]}</result>"
        in
        check Alcotest.(list string) "no index" [] (used p));
    tc "Query 20/21: where-clause predicates are indexable even via let"
      (fun () ->
        let db = Lazy.force db in
        let p20 =
          assert_def1 db
            "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order where \
             $ord/lineitem/@price > 100 return <result>{$ord/lineitem}</result>"
        in
        check Alcotest.bool "20 uses index" true (uses_index p20 "li_price");
        let p21 =
          assert_def1 db
            "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order let $price \
             := $ord/lineitem/@price where $price > 100 return \
             <result>{$ord/lineitem}</result>"
        in
        check Alcotest.bool "21 uses index" true (uses_index p21 "li_price"));
    tc "Query 22: bare path in return is indexable (bind-out iteration)"
      (fun () ->
        let db = Lazy.force db in
        let p =
          assert_def1 db
            "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
             $ord/lineitem[@price > 100]"
        in
        check Alcotest.bool "uses index" true (uses_index p "li_price"));
    tc "Query 28: namespaced data — ns-less index ineligible, wildcard and \
        @price indexes eligible (Section 3.7)" (fun () ->
        let dbn = Engine.create () in
        ignore (sql dbn "CREATE TABLE orders (ordid integer, orddoc XML)");
        ignore (sql dbn "CREATE TABLE customer (cid integer, cdoc XML)");
        let p =
          {
            Workload.Orders_gen.default with
            n_customers = 10;
            n_products = 10;
            namespace = Some "http://ournamespaces.com/order";
          }
        in
        Engine.load_documents dbn ~table:"orders" ~column:"orddoc"
          (Workload.Orders_gen.orders p 30);
        Engine.load_documents dbn ~table:"customer" ~column:"cdoc"
          (Workload.Orders_gen.customers
             { p with namespace = Some "http://ournamespaces.com/customer" });
        (* the paper's failing indexes *)
        ignore
          (sql dbn
             "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
              '//lineitem/@price' AS DOUBLE");
        ignore
          (sql dbn
             "CREATE INDEX c_nation ON customer(cdoc) USING XMLPATTERN \
              '//nation' AS DOUBLE");
        let q28 =
          "declare default element namespace \
           \"http://ournamespaces.com/order\"; declare namespace \
           c=\"http://ournamespaces.com/customer\"; for $ord in \
           db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")/order[lineitem/@price > 600] \
           for $cust in \
           db2-fn:xmlcolumn(\"CUSTOMER.CDOC\")/c:customer[c:nation = 1] \
           where $ord/custid/xs:double(.) = $cust/c:id/xs:double(.) return \
           $ord"
        in
        let plan = assert_def1 dbn q28 in
        check Alcotest.bool "c_nation NOT used" false
          (uses_index plan "c_nation");
        (* li_price IS eligible: default element namespaces do not apply to
           attributes, and its last step is an attribute... but its
           lineitem element step has an empty namespace → ineligible *)
        check Alcotest.bool "li_price NOT used" false
          (uses_index plan "li_price");
        (* the paper's fixes *)
        ignore
          (sql dbn
             "CREATE INDEX c_nation_ns2 ON customer(cdoc) USING XMLPATTERN \
              '//*:nation' AS DOUBLE");
        ignore
          (sql dbn
             "CREATE INDEX li_price_ns ON orders(orddoc) USING XMLPATTERN \
              '//@price' AS DOUBLE");
        let plan2 = assert_def1 dbn q28 in
        check Alcotest.bool "wildcard index used" true
          (uses_index plan2 "c_nation_ns2");
        check Alcotest.bool "//@price index used" true
          (uses_index plan2 "li_price_ns"));
    tc "Query 29: /text() misalignment (Section 3.8)" (fun () ->
        let dbt = Engine.create () in
        ignore (sql dbt "CREATE TABLE orders (ordid integer, orddoc XML)");
        Engine.load_documents dbt ~table:"orders" ~column:"orddoc"
          [
            Workload.Orders_gen.usd_price_doc;
            "<order><lineitem><price>99.50</price></lineitem></order>";
          ];
        ignore
          (sql dbt
             "CREATE INDEX price_text ON orders(orddoc) USING XMLPATTERN \
              '//price' AS VARCHAR(30)");
        let plan =
          assert_def1 dbt
            "for $ord in db2-fn:xmlcolumn(\"ORDERS.ORDDOC\") \
             /order[lineitem/price/text() = \"99.50\"] return $ord"
        in
        (* the element index indexes "99.50USD"; using it for the text()
           query would be wrong — it must be rejected *)
        check Alcotest.bool "price_text NOT used" false
          (uses_index plan "price_text");
        (* and the correct text() index works *)
        ignore
          (sql dbt
             "CREATE INDEX price_t ON orders(orddoc) USING XMLPATTERN \
              '//price/text()' AS VARCHAR(30)");
        let plan2 =
          assert_def1 dbt
            "for $ord in db2-fn:xmlcolumn(\"ORDERS.ORDDOC\") \
             /order[lineitem/price/text() = \"99.50\"] return $ord"
        in
        check Alcotest.bool "price_t used" true (uses_index plan2 "price_t"));
    tc "Query 30: attribute between merges into one range scan" (fun () ->
        let db = Lazy.force db in
        let plan =
          assert_def1 db
            "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
             //order[lineitem[@price>100 and @price<200]] return $i"
        in
        check Alcotest.bool "merged" true
          (List.exists
             (fun n -> Helpers.contains_sub ~affix:"BETWEEN merged" n)
             plan.Planner.notes));
    tc "3.10: element between with general comparisons needs two scans"
      (fun () ->
        let db = Lazy.force db in
        ignore
          (sql db
             "CREATE INDEX li_price_el ON orders(orddoc) USING XMLPATTERN \
              '//lineitem/price' AS DOUBLE");
        let plan =
          assert_def1 db
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/price > 100 \
             and lineitem/price < 200]"
        in
        check Alcotest.bool "IXAND" true
          (List.exists
             (fun n -> Helpers.contains_sub ~affix:"IXAND" n)
             plan.Planner.notes));
    tc "3.10: multi-price lineitem satisfies the unmergeable between"
      (fun () ->
        (* prices 250 and 50: lineitem/price > 100 and < 200 is TRUE *)
        let r =
          xq
            ~collections:
              [
                ( "ORDERS.ORDDOC",
                  [
                    "<order><lineitem><price>250</price><price>50</price>\
                     </lineitem></order>";
                  ] );
              ]
            "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/price \
             > 100 and lineitem/price < 200])"
        in
        check Alcotest.string "matches" "1"
          (Xmlparse.Xml_writer.seq_to_string r));
    tc "3.10: self-axis data() form allows multiple prices" (fun () ->
        let colls =
          [
            ( "ORDERS.ORDDOC",
              [
                "<order><lineitem><price>250</price><price>150</price>\
                 </lineitem></order>";
              ] );
          ]
        in
        let r =
          xq ~collections:colls
            "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem/price/data()\
             [. > 100 and . < 200])"
        in
        check Alcotest.string "only 150 in range" "1"
          (Xmlparse.Xml_writer.seq_to_string r));
  ]

let suite = [ ("paper:queries", q1_30) ]
