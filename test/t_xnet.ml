(** Xnet protocol and server torture tests.

    Three layers: pure codec properties (qcheck roundtrip
    client-encode ≡ server-decode, plus the server direction), raw-socket
    frame torture against a live server (truncated / oversized / garbage
    frames, non-Hello openings), and full-stack session behavior through
    the client library — shared plan cache across sessions, per-session
    governor budgets ([XQDB0001] over the wire), admission rejection past
    [--max-sessions], mid-cursor disconnect releasing the cursor (and
    its governor charge), and graceful drain with zero leaked
    sessions. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Codec roundtrip properties                                          *)
(* ------------------------------------------------------------------ *)

let gen_string = QCheck.Gen.(string_size ~gen:char (int_bound 30))
let gen_small_list g = QCheck.Gen.(list_size (int_bound 4) g)

let gen_bindings =
  QCheck.Gen.(
    map2
      (fun params vars -> { Xnet.Proto.params; vars })
      (gen_small_list gen_string)
      (gen_small_list (pair gen_string gen_string)))

let gen_limits =
  QCheck.Gen.(
    map
      (fun (steps, nodes, depth, timeout) ->
        {
          Xdm.Limits.max_steps = steps;
          max_nodes = nodes;
          max_depth = depth;
          timeout = Option.map float_of_int timeout;
        })
      (quad (opt nat) (opt nat) (opt nat) (opt nat)))

let gen_client_msg : Xnet.Proto.client_msg QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun user client -> Xnet.Proto.Hello { user; client })
          gen_string gen_string;
        map2 (fun src b -> Xnet.Proto.Exec { src; b }) gen_string gen_bindings;
        map2
          (fun name src -> Xnet.Proto.Prepare { name; src })
          gen_string gen_string;
        map2
          (fun name b -> Xnet.Proto.Execute { name; b })
          gen_string gen_bindings;
        map2
          (fun src b -> Xnet.Proto.Open_cursor { src; b })
          gen_string gen_bindings;
        map2 (fun cursor max -> Xnet.Proto.Fetch { cursor; max }) nat nat;
        map (fun cursor -> Xnet.Proto.Close_cursor { cursor }) nat;
        map (fun l -> Xnet.Proto.Set_limits l) gen_limits;
        return Xnet.Proto.Checkpoint;
        return Xnet.Proto.Stats;
        return Xnet.Proto.Quit;
      ])

let gen_elem =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Xnet.Proto.Brow r) (gen_small_list gen_string);
        map (fun s -> Xnet.Proto.Bitem s) gen_string;
      ])

let gen_payload =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun cols rows -> Xnet.Proto.Wrows { cols; rows })
          (gen_small_list gen_string)
          (gen_small_list (gen_small_list gen_string));
        map (fun items -> Xnet.Proto.Witems items) (gen_small_list gen_string);
      ])

let gen_server_msg : Xnet.Proto.server_msg QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun session server ->
            Xnet.Proto.Ready
              { session; server; version = Xnet.Proto.version })
          nat gen_string;
        map2
          (fun payload (notes, indexes_used, diagnostics) ->
            Xnet.Proto.Okay { payload; notes; indexes_used; diagnostics })
          gen_payload
          (triple (gen_small_list gen_string) (gen_small_list gen_string)
             (gen_small_list gen_string));
        map2 (fun code msg -> Xnet.Proto.Err { code; msg }) gen_string
          gen_string;
        map2
          (fun name params -> Xnet.Proto.Prepared { name; params })
          gen_string (gen_small_list gen_string);
        map2
          (fun cursor cols -> Xnet.Proto.Cursor_opened { cursor; cols })
          nat (gen_small_list gen_string);
        map (fun cursor -> Xnet.Proto.Cursor_closed { cursor }) nat;
        map2
          (fun elems finished -> Xnet.Proto.Batch { elems; finished })
          (gen_small_list gen_elem) bool;
        map (fun s -> Xnet.Proto.Stats_text s) gen_string;
        return Xnet.Proto.Bye;
      ])

(* Hello roundtrips only at the supported version, so pin it there (the
   generator never produces another version). *)
let prop_client_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"xnet: client-encode = server-decode (roundtrip)"
    (QCheck.make gen_client_msg)
    (fun m ->
      Xnet.Proto.decode_client (Xnet.Proto.encode_client m) = m)

let prop_server_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"xnet: server-encode = client-decode (roundtrip)"
    (QCheck.make gen_server_msg)
    (fun m ->
      Xnet.Proto.decode_server (Xnet.Proto.encode_server m) = m)

(* Arbitrary bytes never crash the decoder: they either parse or raise
   Bad_frame — nothing else escapes. *)
let prop_decoder_total =
  QCheck.Test.make ~count:500 ~name:"xnet: decoder is total on garbage"
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s ->
      (try ignore (Xnet.Proto.decode_client s)
       with Xnet.Proto.Bad_frame _ -> ());
      (try ignore (Xnet.Proto.decode_server s)
       with Xnet.Proto.Bad_frame _ -> ());
      true)

let codec_unit_tests =
  [
    tc "truncated payload raises Bad_frame" (fun () ->
        let enc = Xnet.Proto.encode_client (Xnet.Proto.Exec { src = "SELECT 1"; b = Xnet.Proto.no_bindings }) in
        let cut = String.sub enc 0 (String.length enc - 3) in
        match Xnet.Proto.decode_client cut with
        | _ -> Alcotest.fail "expected Bad_frame"
        | exception Xnet.Proto.Bad_frame _ -> ());
    tc "trailing garbage raises Bad_frame" (fun () ->
        let enc = Xnet.Proto.encode_client Xnet.Proto.Quit ^ "zz" in
        match Xnet.Proto.decode_client enc with
        | _ -> Alcotest.fail "expected Bad_frame"
        | exception Xnet.Proto.Bad_frame _ -> ());
    tc "client decoder rejects server tags and vice versa" (fun () ->
        let s = Xnet.Proto.encode_server Xnet.Proto.Bye in
        (match Xnet.Proto.decode_client s with
        | _ -> Alcotest.fail "expected Bad_frame"
        | exception Xnet.Proto.Bad_frame _ -> ());
        let c = Xnet.Proto.encode_client Xnet.Proto.Quit in
        match Xnet.Proto.decode_server c with
        | _ -> Alcotest.fail "expected Bad_frame"
        | exception Xnet.Proto.Bad_frame _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Live-server fixtures                                                *)
(* ------------------------------------------------------------------ *)

(* An ephemeral-port server over a paper_db engine; every test tears it
   down, so no state leaks between tests. *)
let with_server ?(max_sessions = 8) f =
  let db = paper_db ~n_orders:30 () in
  let srv =
    Xnet.Server.start ~engine:db
      {
        Xnet.Server.default_config with
        port = 0;
        max_sessions;
        drain_timeout = 2.0;
      }
  in
  Fun.protect ~finally:(fun () -> Xnet.Server.stop srv) (fun () -> f db srv)

let with_client srv f =
  let c =
    Xnet.Client.connect ~host:"127.0.0.1" ~port:(Xnet.Server.port srv) ()
  in
  Fun.protect ~finally:(fun () -> Xnet.Client.close c) (fun () -> f c)

(* Wait out the server's asynchronous session teardown. *)
let eventually ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* A raw protocol connection bypassing the client library, for torture
   that the library refuses to produce. *)
let raw_connect srv =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Xnet.Server.port srv));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  (fd, ic, oc)

let raw_hello oc ic =
  Xnet.Proto.write_frame oc
    (Xnet.Proto.encode_client
       (Xnet.Proto.Hello { user = "torture"; client = "t_xnet" }));
  match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
  | Xnet.Proto.Ready _ -> ()
  | _ -> Alcotest.fail "expected Ready"

let expect_err_frame ~code ic =
  match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
  | Xnet.Proto.Err e ->
      check Alcotest.string "error frame code" code e.code
  | _ -> Alcotest.failf "expected Err [%s] frame" code

(* ------------------------------------------------------------------ *)
(* Frame torture against a live server                                 *)
(* ------------------------------------------------------------------ *)

let torture_tests =
  [
    tc "garbage frame answered with XQDB0006, connection closed" (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                raw_hello oc ic;
                Xnet.Proto.write_frame oc "\xff\xfe\xfd\xfc";
                expect_err_frame ~code:"XQDB0006" ic;
                (match Xnet.Proto.read_frame ic with
                | _ -> Alcotest.fail "expected EOF after protocol error"
                | exception End_of_file -> ());
                Alcotest.(check bool)
                  "session reaped" true
                  (eventually (fun () -> Xnet.Server.active_sessions srv = 0)))));
    tc "oversized frame length rejected without allocation" (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                raw_hello oc ic;
                (* length claims 1 GiB; the server must refuse before
                   reading (or allocating) a byte of it *)
                output_binary_int oc 0x40000000;
                flush oc;
                expect_err_frame ~code:"XQDB0006" ic)));
    tc "truncated frame (disconnect mid-payload) reaps the session"
      (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            raw_hello oc ic;
            output_binary_int oc 100;
            output_string oc "only-ten-b";
            flush oc;
            Unix.close fd;
            Alcotest.(check bool)
              "session reaped" true
              (eventually (fun () -> Xnet.Server.active_sessions srv = 0))));
    tc "first frame must be Hello" (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Xnet.Proto.write_frame oc
                  (Xnet.Proto.encode_client
                     (Xnet.Proto.Exec
                        { src = "SELECT 1"; b = Xnet.Proto.no_bindings }));
                expect_err_frame ~code:"XQDB0006" ic)));
    tc "wrong protocol version in Hello is refused" (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                (* hand-build a Hello with version 99: tag 0x01, u32 99,
                   then two empty strings *)
                let buf = Buffer.create 16 in
                Buffer.add_char buf '\x01';
                Buffer.add_int32_be buf 99l;
                Buffer.add_int32_be buf 0l;
                Buffer.add_int32_be buf 0l;
                Xnet.Proto.write_frame oc (Buffer.contents buf);
                expect_err_frame ~code:"XQDB0006" ic)));
  ]

(* ------------------------------------------------------------------ *)
(* Full-stack session behavior                                         *)
(* ------------------------------------------------------------------ *)

let counter db name = !(Xprof.Registry.counter (Engine.registry db) name)

let session_tests =
  [
    tc "statements, prepared namespace and cursors over the wire" (fun () ->
        with_server (fun _db srv ->
            with_client srv (fun c ->
                let o = Xnet.Client.exec c "SELECT ordid FROM orders" in
                (match o.Xnet.Client.payload with
                | Xnet.Proto.Wrows { rows; _ } ->
                    check Alcotest.int "row count" 30 (List.length rows)
                | _ -> Alcotest.fail "expected rows");
                let params =
                  Xnet.Client.prepare c ~name:"byid"
                    "SELECT ordid FROM orders WHERE ordid = ?"
                in
                check
                  Alcotest.(list string)
                  "parameter slots" [ "?1" ] params;
                let o =
                  Xnet.Client.execute c "byid"
                    ~b:{ Xnet.Proto.params = [ "3" ]; vars = [] }
                in
                (match o.Xnet.Client.payload with
                | Xnet.Proto.Wrows { rows; _ } ->
                    check Alcotest.int "one row" 1 (List.length rows)
                | _ -> Alcotest.fail "expected rows");
                (* prepared names are per-session: a second session does
                   not see "byid" *)
                with_client srv (fun c2 ->
                    expect_error "XPST0008" (fun () ->
                        Xnet.Client.execute c2 "byid"));
                (* cursor: pull 5 of 30, then close early *)
                let cursor, cols =
                  Xnet.Client.open_cursor c "SELECT ordid FROM orders"
                in
                check Alcotest.(list string) "cursor cols" [ "ordid" ] cols;
                let elems, finished = Xnet.Client.fetch c ~cursor ~max:5 in
                check Alcotest.int "batch size" 5 (List.length elems);
                check Alcotest.bool "not finished" false finished;
                Xnet.Client.close_cursor c cursor)));
    tc "plan cache is shared across sessions" (fun () ->
        with_server (fun db srv ->
            let q =
              "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 990]"
            in
            with_client srv (fun c1 -> ignore (Xnet.Client.exec c1 q));
            let hits0 = counter db "plan_cache_hits_total" in
            with_client srv (fun c2 ->
                let o = Xnet.Client.exec c2 q in
                Alcotest.(check bool)
                  "second session reports a plan-cache hit" true
                  (List.exists
                     (contains_sub ~affix:"plan cache: hit")
                     o.Xnet.Client.diagnostics));
            Alcotest.(check bool)
              "hit counter rose across sessions" true
              (counter db "plan_cache_hits_total" > hits0)));
    tc "per-session governor budget raises XQDB0001 over the wire"
      (fun () ->
        with_server (fun _db srv ->
            let hungry =
              "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
               //order[lineitem/@*>100] return $i"
            in
            with_client srv (fun starving ->
                Xnet.Client.set_limits starving
                  { Xdm.Limits.unlimited with Xdm.Limits.max_steps = Some 50 };
                expect_error "XQDB0001" (fun () ->
                    Xnet.Client.exec starving hungry);
                (* the session survives its budget error *)
                Xnet.Client.set_limits starving Xdm.Limits.unlimited;
                ignore
                  (Xnet.Client.exec starving
                     "SELECT id FROM products WHERE id = 'nope'");
                (* and the budget is per-session: a fresh session runs
                   the same statement unlimited *)
                with_client srv (fun fine ->
                    ignore (Xnet.Client.exec fine hungry)))));
    tc "admission rejection past max-sessions is XQDB0001" (fun () ->
        with_server ~max_sessions:1 (fun _db srv ->
            with_client srv (fun _keeper ->
                expect_error "XQDB0001" (fun () ->
                    Xnet.Client.connect ~host:"127.0.0.1"
                      ~port:(Xnet.Server.port srv) ()));
            (* capacity frees up once the keeper disconnects *)
            Alcotest.(check bool)
              "session reaped" true
              (eventually (fun () -> Xnet.Server.active_sessions srv = 0));
            with_client srv (fun c -> ignore (Xnet.Client.exec c "SELECT id FROM products"))));
    tc "mid-cursor disconnect closes the cursor and frees the session"
      (fun () ->
        with_server (fun db srv ->
            let opened0 = counter db "cursors_opened_total" in
            let fd, ic, oc = raw_connect srv in
            raw_hello oc ic;
            Xnet.Proto.write_frame oc
              (Xnet.Proto.encode_client
                 (Xnet.Proto.Open_cursor
                    {
                      src = "SELECT ordid FROM orders";
                      b = Xnet.Proto.no_bindings;
                    }));
            (match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
            | Xnet.Proto.Cursor_opened _ -> ()
            | _ -> Alcotest.fail "expected Cursor_opened");
            Xnet.Proto.write_frame oc
              (Xnet.Proto.encode_client (Xnet.Proto.Fetch { cursor = 1; max = 3 }));
            (match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
            | Xnet.Proto.Batch { elems; finished } ->
                check Alcotest.int "partial batch" 3 (List.length elems);
                check Alcotest.bool "not finished" false finished
            | _ -> Alcotest.fail "expected Batch");
            (* vanish mid-cursor: no Close_cursor, no Quit *)
            Unix.close fd;
            Alcotest.(check bool)
              "session reaped" true
              (eventually (fun () -> Xnet.Server.active_sessions srv = 0));
            check Alcotest.int "orphaned cursor was closed"
              (opened0 + 1)
              (counter db "cursors_closed_total");
            (* no parallel-region or domain-pool work leaked with it *)
            Alcotest.(check bool) "xpar idle" true (Xpar.idle ())));
    tc "drain: stop with a live session leaks nothing" (fun () ->
        let db = paper_db ~n_orders:10 () in
        let srv =
          Xnet.Server.start ~engine:db
            {
              Xnet.Server.default_config with
              port = 0;
              (* short timeout: the live idle session below must be
                 force-shut, not waited out *)
              drain_timeout = 0.3;
            }
        in
        let c =
          Xnet.Client.connect ~host:"127.0.0.1" ~port:(Xnet.Server.port srv) ()
        in
        ignore (Xnet.Client.exec c "SELECT id FROM products");
        Xnet.Server.stop srv;
        check Alcotest.int "zero leaked sessions" 0
          (Xnet.Server.active_sessions srv);
        (* the forced shutdown surfaces client-side as a transport error
           on the next call *)
        (match Xnet.Client.exec c "SELECT id FROM products" with
        | _ -> Alcotest.fail "expected Net_error after drain"
        | exception Xnet.Client.Net_error _ -> ());
        Xnet.Client.close c);
    tc "stats frame carries server gauges and plan-cache line" (fun () ->
        with_server (fun _db srv ->
            with_client srv (fun c ->
                ignore (Xnet.Client.exec c "SELECT id FROM products");
                let s = Xnet.Client.stats c in
                List.iter
                  (fun needle ->
                    Alcotest.(check bool)
                      (needle ^ " present") true
                      (contains_sub ~affix:needle s))
                  [
                    "xnet_requests_total";
                    "xnet_sessions_active";
                    "xnet_qps";
                    "xnet_uptime_seconds";
                    "plan_cache size=";
                  ])));
  ]

(* Lockorder hygiene: with the thread-id provider installed (by
   Server.start), concurrent sessions must not fabricate phantom
   cross-thread edges between the server's own locks — and above all no
   cycle between "xnet.engine" and "xnet.sessions", which are never
   nested by construction. *)
let lockorder_tests =
  [
    tc "no lock-order cycle between server locks under concurrency"
      (fun () ->
        with_server (fun _db srv ->
            let threads =
              List.init 4 (fun _ ->
                  Thread.create
                    (fun () ->
                      with_client srv (fun c ->
                          for _ = 1 to 5 do
                            ignore
                              (Xnet.Client.exec c "SELECT ordid FROM orders")
                          done))
                    ())
            in
            List.iter Thread.join threads;
            let cycles = Xpar.Lockorder.cycles () in
            let server_cycle =
              List.exists
                (List.exists (fun n ->
                     n = "xnet.engine" || n = "xnet.sessions"))
                cycles
            in
            Alcotest.(check bool)
              "no potential deadlock involving server locks" false
              server_cycle));
  ]

let suite =
  [
    ("xnet:codec", codec_unit_tests);
    ( "xnet:prop",
      List.map QCheck_alcotest.to_alcotest
        [ prop_client_roundtrip; prop_server_roundtrip; prop_decoder_total ] );
    ("xnet:torture", torture_tests);
    ("xnet:session", session_tests);
    ("xnet:lockorder", lockorder_tests);
  ]
