(** Xnet protocol and server torture tests.

    Three layers: pure codec properties (qcheck roundtrip
    client-encode ≡ server-decode, plus the server direction), raw-socket
    frame torture against a live server (truncated / oversized / garbage
    frames, non-Hello openings), and full-stack session behavior through
    the client library — shared plan cache across sessions, per-session
    governor budgets ([XQDB0001] over the wire), admission rejection past
    [--max-sessions], mid-cursor disconnect releasing the cursor (and
    its governor charge), and graceful drain with zero leaked
    sessions. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Codec roundtrip properties                                          *)
(* ------------------------------------------------------------------ *)

let gen_string = QCheck.Gen.(string_size ~gen:char (int_bound 30))
let gen_small_list g = QCheck.Gen.(list_size (int_bound 4) g)

let gen_bindings =
  QCheck.Gen.(
    map2
      (fun params vars -> { Xnet.Proto.params; vars })
      (gen_small_list gen_string)
      (gen_small_list (pair gen_string gen_string)))

let gen_limits =
  QCheck.Gen.(
    map
      (fun (steps, nodes, depth, timeout) ->
        {
          Xdm.Limits.max_steps = steps;
          max_nodes = nodes;
          max_depth = depth;
          timeout = Option.map float_of_int timeout;
        })
      (quad (opt nat) (opt nat) (opt nat) (opt nat)))

let gen_client_msg : Xnet.Proto.client_msg QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun user client ->
            Xnet.Proto.Hello
              { version = Xnet.Proto.version; user; client })
          gen_string gen_string;
        map2 (fun src b -> Xnet.Proto.Exec { src; b }) gen_string gen_bindings;
        map2
          (fun name src -> Xnet.Proto.Prepare { name; src })
          gen_string gen_string;
        map2
          (fun name b -> Xnet.Proto.Execute { name; b })
          gen_string gen_bindings;
        map2
          (fun src b -> Xnet.Proto.Open_cursor { src; b })
          gen_string gen_bindings;
        map2 (fun cursor max -> Xnet.Proto.Fetch { cursor; max }) nat nat;
        map (fun cursor -> Xnet.Proto.Close_cursor { cursor }) nat;
        map (fun l -> Xnet.Proto.Set_limits l) gen_limits;
        return Xnet.Proto.Checkpoint;
        return Xnet.Proto.Stats;
        return Xnet.Proto.Quit;
        map
          (fun ro ->
            Xnet.Proto.Begin
              {
                mode =
                  (if ro then Xnet.Proto.Read_only else Xnet.Proto.Read_write);
              })
          bool;
        return Xnet.Proto.Commit;
        return Xnet.Proto.Rollback;
      ])

let gen_elem =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Xnet.Proto.Brow r) (gen_small_list gen_string);
        map (fun s -> Xnet.Proto.Bitem s) gen_string;
      ])

let gen_payload =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun cols rows -> Xnet.Proto.Wrows { cols; rows })
          (gen_small_list gen_string)
          (gen_small_list (gen_small_list gen_string));
        map (fun items -> Xnet.Proto.Witems items) (gen_small_list gen_string);
      ])

let gen_server_msg : Xnet.Proto.server_msg QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun session server ->
            Xnet.Proto.Ready
              { session; server; version = Xnet.Proto.version })
          nat gen_string;
        map2
          (fun payload (notes, indexes_used, diagnostics) ->
            Xnet.Proto.Okay { payload; notes; indexes_used; diagnostics })
          gen_payload
          (triple (gen_small_list gen_string) (gen_small_list gen_string)
             (gen_small_list gen_string));
        map2 (fun code msg -> Xnet.Proto.Err { code; msg }) gen_string
          gen_string;
        map2
          (fun name params -> Xnet.Proto.Prepared { name; params })
          gen_string (gen_small_list gen_string);
        map2
          (fun cursor cols -> Xnet.Proto.Cursor_opened { cursor; cols })
          nat (gen_small_list gen_string);
        map (fun cursor -> Xnet.Proto.Cursor_closed { cursor }) nat;
        map2
          (fun elems finished -> Xnet.Proto.Batch { elems; finished })
          (gen_small_list gen_elem) bool;
        map (fun s -> Xnet.Proto.Stats_text s) gen_string;
        return Xnet.Proto.Bye;
      ])

(* Hello's version field roundtrips like any other integer; the
   generator pins it to the current version for simplicity. *)
let prop_client_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"xnet: client-encode = server-decode (roundtrip)"
    (QCheck.make gen_client_msg)
    (fun m ->
      Xnet.Proto.decode_client (Xnet.Proto.encode_client m) = m)

let prop_server_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"xnet: server-encode = client-decode (roundtrip)"
    (QCheck.make gen_server_msg)
    (fun m ->
      Xnet.Proto.decode_server (Xnet.Proto.encode_server m) = m)

(* Arbitrary bytes never crash the decoder: they either parse or raise
   Bad_frame — nothing else escapes. *)
let prop_decoder_total =
  QCheck.Test.make ~count:500 ~name:"xnet: decoder is total on garbage"
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s ->
      (try ignore (Xnet.Proto.decode_client s)
       with Xnet.Proto.Bad_frame _ -> ());
      (try ignore (Xnet.Proto.decode_server s)
       with Xnet.Proto.Bad_frame _ -> ());
      true)

let codec_unit_tests =
  [
    tc "truncated payload raises Bad_frame" (fun () ->
        let enc = Xnet.Proto.encode_client (Xnet.Proto.Exec { src = "SELECT 1"; b = Xnet.Proto.no_bindings }) in
        let cut = String.sub enc 0 (String.length enc - 3) in
        match Xnet.Proto.decode_client cut with
        | _ -> Alcotest.fail "expected Bad_frame"
        | exception Xnet.Proto.Bad_frame _ -> ());
    tc "trailing garbage raises Bad_frame" (fun () ->
        let enc = Xnet.Proto.encode_client Xnet.Proto.Quit ^ "zz" in
        match Xnet.Proto.decode_client enc with
        | _ -> Alcotest.fail "expected Bad_frame"
        | exception Xnet.Proto.Bad_frame _ -> ());
    tc "client decoder rejects server tags and vice versa" (fun () ->
        let s = Xnet.Proto.encode_server Xnet.Proto.Bye in
        (match Xnet.Proto.decode_client s with
        | _ -> Alcotest.fail "expected Bad_frame"
        | exception Xnet.Proto.Bad_frame _ -> ());
        let c = Xnet.Proto.encode_client Xnet.Proto.Quit in
        match Xnet.Proto.decode_server c with
        | _ -> Alcotest.fail "expected Bad_frame"
        | exception Xnet.Proto.Bad_frame _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Live-server fixtures                                                *)
(* ------------------------------------------------------------------ *)

(* An ephemeral-port server over a paper_db engine; every test tears it
   down, so no state leaks between tests. *)
let with_server ?(max_sessions = 8) f =
  let db = paper_db ~n_orders:30 () in
  let srv =
    Xnet.Server.start ~engine:db
      {
        Xnet.Server.default_config with
        port = 0;
        max_sessions;
        drain_timeout = 2.0;
      }
  in
  Fun.protect ~finally:(fun () -> Xnet.Server.stop srv) (fun () -> f db srv)

let with_client srv f =
  let c =
    Xnet.Client.connect ~host:"127.0.0.1" ~port:(Xnet.Server.port srv) ()
  in
  Fun.protect ~finally:(fun () -> Xnet.Client.close c) (fun () -> f c)

(* Wait out the server's asynchronous session teardown. *)
let eventually ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* A raw protocol connection bypassing the client library, for torture
   that the library refuses to produce. *)
let raw_connect srv =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Xnet.Server.port srv));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  (fd, ic, oc)

let raw_hello ?(version = Xnet.Proto.version) oc ic =
  Xnet.Proto.write_frame oc
    (Xnet.Proto.encode_client
       (Xnet.Proto.Hello { version; user = "torture"; client = "t_xnet" }));
  match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
  | Xnet.Proto.Ready { version = negotiated; _ } ->
      check Alcotest.int "negotiated version" (min version Xnet.Proto.version)
        negotiated
  | _ -> Alcotest.fail "expected Ready"

let expect_err_frame ~code ic =
  match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
  | Xnet.Proto.Err e ->
      check Alcotest.string "error frame code" code e.code
  | _ -> Alcotest.failf "expected Err [%s] frame" code

(* ------------------------------------------------------------------ *)
(* Frame torture against a live server                                 *)
(* ------------------------------------------------------------------ *)

let torture_tests =
  [
    tc "garbage frame answered with XQDB0006, connection closed" (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                raw_hello oc ic;
                Xnet.Proto.write_frame oc "\xff\xfe\xfd\xfc";
                expect_err_frame ~code:"XQDB0006" ic;
                (match Xnet.Proto.read_frame ic with
                | _ -> Alcotest.fail "expected EOF after protocol error"
                | exception End_of_file -> ());
                Alcotest.(check bool)
                  "session reaped" true
                  (eventually (fun () -> Xnet.Server.active_sessions srv = 0)))));
    tc "oversized frame length rejected without allocation" (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                raw_hello oc ic;
                (* length claims 1 GiB; the server must refuse before
                   reading (or allocating) a byte of it *)
                output_binary_int oc 0x40000000;
                flush oc;
                expect_err_frame ~code:"XQDB0006" ic)));
    tc "truncated frame (disconnect mid-payload) reaps the session"
      (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            raw_hello oc ic;
            output_binary_int oc 100;
            output_string oc "only-ten-b";
            flush oc;
            Unix.close fd;
            Alcotest.(check bool)
              "session reaped" true
              (eventually (fun () -> Xnet.Server.active_sessions srv = 0))));
    tc "first frame must be Hello" (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Xnet.Proto.write_frame oc
                  (Xnet.Proto.encode_client
                     (Xnet.Proto.Exec
                        { src = "SELECT 1"; b = Xnet.Proto.no_bindings }));
                expect_err_frame ~code:"XQDB0006" ic)));
    tc "newer client negotiates down; version 0 Hello is refused"
      (fun () ->
        with_server (fun _db srv ->
            (* a hypothetical v99 client is served at the server's own
               version (negotiation = min) *)
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> raw_hello ~version:99 oc ic);
            (* version 0 is not a protocol version at all *)
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                let buf = Buffer.create 16 in
                Buffer.add_char buf '\x01';
                Buffer.add_int32_be buf 0l;
                Buffer.add_int32_be buf 0l;
                Buffer.add_int32_be buf 0l;
                Xnet.Proto.write_frame oc (Buffer.contents buf);
                expect_err_frame ~code:"XQDB0006" ic)));
    tc "transaction frames on a v1-negotiated session are refused"
      (fun () ->
        with_server (fun _db srv ->
            let fd, ic, oc = raw_connect srv in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                raw_hello ~version:1 oc ic;
                Xnet.Proto.write_frame oc
                  (Xnet.Proto.encode_client
                     (Xnet.Proto.Begin { mode = Xnet.Proto.Read_write }));
                expect_err_frame ~code:"XQDB0006" ic)));
  ]

(* ------------------------------------------------------------------ *)
(* Full-stack session behavior                                         *)
(* ------------------------------------------------------------------ *)

let counter db name = !(Xprof.Registry.counter (Engine.registry db) name)

let session_tests =
  [
    tc "statements, prepared namespace and cursors over the wire" (fun () ->
        with_server (fun _db srv ->
            with_client srv (fun c ->
                let o = Xnet.Client.exec c "SELECT ordid FROM orders" in
                (match o.Xnet.Client.payload with
                | Xnet.Proto.Wrows { rows; _ } ->
                    check Alcotest.int "row count" 30 (List.length rows)
                | _ -> Alcotest.fail "expected rows");
                let params =
                  Xnet.Client.prepare c ~name:"byid"
                    "SELECT ordid FROM orders WHERE ordid = ?"
                in
                check
                  Alcotest.(list string)
                  "parameter slots" [ "?1" ] params;
                let o =
                  Xnet.Client.execute c "byid"
                    ~b:{ Xnet.Proto.params = [ "3" ]; vars = [] }
                in
                (match o.Xnet.Client.payload with
                | Xnet.Proto.Wrows { rows; _ } ->
                    check Alcotest.int "one row" 1 (List.length rows)
                | _ -> Alcotest.fail "expected rows");
                (* prepared names are per-session: a second session does
                   not see "byid" *)
                with_client srv (fun c2 ->
                    expect_error "XPST0008" (fun () ->
                        Xnet.Client.execute c2 "byid"));
                (* cursor: pull 5 of 30, then close early *)
                let cursor, cols =
                  Xnet.Client.open_cursor c "SELECT ordid FROM orders"
                in
                check Alcotest.(list string) "cursor cols" [ "ordid" ] cols;
                let elems, finished = Xnet.Client.fetch c ~cursor ~max:5 in
                check Alcotest.int "batch size" 5 (List.length elems);
                check Alcotest.bool "not finished" false finished;
                Xnet.Client.close_cursor c cursor)));
    tc "plan cache is shared across sessions" (fun () ->
        with_server (fun db srv ->
            let q =
              "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 990]"
            in
            with_client srv (fun c1 -> ignore (Xnet.Client.exec c1 q));
            let hits0 = counter db "plan_cache_hits_total" in
            with_client srv (fun c2 ->
                let o = Xnet.Client.exec c2 q in
                Alcotest.(check bool)
                  "second session reports a plan-cache hit" true
                  (List.exists
                     (contains_sub ~affix:"plan cache: hit")
                     o.Xnet.Client.diagnostics));
            Alcotest.(check bool)
              "hit counter rose across sessions" true
              (counter db "plan_cache_hits_total" > hits0)));
    tc "per-session governor budget raises XQDB0001 over the wire"
      (fun () ->
        with_server (fun _db srv ->
            let hungry =
              "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
               //order[lineitem/@*>100] return $i"
            in
            with_client srv (fun starving ->
                Xnet.Client.set_limits starving
                  { Xdm.Limits.unlimited with Xdm.Limits.max_steps = Some 50 };
                expect_error "XQDB0001" (fun () ->
                    Xnet.Client.exec starving hungry);
                (* the session survives its budget error *)
                Xnet.Client.set_limits starving Xdm.Limits.unlimited;
                ignore
                  (Xnet.Client.exec starving
                     "SELECT id FROM products WHERE id = 'nope'");
                (* and the budget is per-session: a fresh session runs
                   the same statement unlimited *)
                with_client srv (fun fine ->
                    ignore (Xnet.Client.exec fine hungry)))));
    tc "admission rejection past max-sessions is XQDB0001" (fun () ->
        with_server ~max_sessions:1 (fun _db srv ->
            with_client srv (fun _keeper ->
                expect_error "XQDB0001" (fun () ->
                    Xnet.Client.connect ~host:"127.0.0.1"
                      ~port:(Xnet.Server.port srv) ()));
            (* capacity frees up once the keeper disconnects *)
            Alcotest.(check bool)
              "session reaped" true
              (eventually (fun () -> Xnet.Server.active_sessions srv = 0));
            with_client srv (fun c -> ignore (Xnet.Client.exec c "SELECT id FROM products"))));
    tc "mid-cursor disconnect closes the cursor and frees the session"
      (fun () ->
        with_server (fun db srv ->
            let opened0 = counter db "cursors_opened_total" in
            let fd, ic, oc = raw_connect srv in
            raw_hello oc ic;
            Xnet.Proto.write_frame oc
              (Xnet.Proto.encode_client
                 (Xnet.Proto.Open_cursor
                    {
                      src = "SELECT ordid FROM orders";
                      b = Xnet.Proto.no_bindings;
                    }));
            (match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
            | Xnet.Proto.Cursor_opened _ -> ()
            | _ -> Alcotest.fail "expected Cursor_opened");
            Xnet.Proto.write_frame oc
              (Xnet.Proto.encode_client (Xnet.Proto.Fetch { cursor = 1; max = 3 }));
            (match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
            | Xnet.Proto.Batch { elems; finished } ->
                check Alcotest.int "partial batch" 3 (List.length elems);
                check Alcotest.bool "not finished" false finished
            | _ -> Alcotest.fail "expected Batch");
            (* vanish mid-cursor: no Close_cursor, no Quit *)
            Unix.close fd;
            Alcotest.(check bool)
              "session reaped" true
              (eventually (fun () -> Xnet.Server.active_sessions srv = 0));
            check Alcotest.int "orphaned cursor was closed"
              (opened0 + 1)
              (counter db "cursors_closed_total");
            (* no parallel-region or domain-pool work leaked with it *)
            Alcotest.(check bool) "xpar idle" true (Xpar.idle ())));
    tc "drain: stop with a live session leaks nothing" (fun () ->
        let db = paper_db ~n_orders:10 () in
        let srv =
          Xnet.Server.start ~engine:db
            {
              Xnet.Server.default_config with
              port = 0;
              (* short timeout: the live idle session below must be
                 force-shut, not waited out *)
              drain_timeout = 0.3;
            }
        in
        let c =
          Xnet.Client.connect ~host:"127.0.0.1" ~port:(Xnet.Server.port srv) ()
        in
        ignore (Xnet.Client.exec c "SELECT id FROM products");
        Xnet.Server.stop srv;
        check Alcotest.int "zero leaked sessions" 0
          (Xnet.Server.active_sessions srv);
        (* the forced shutdown surfaces client-side as a transport error
           on the next call *)
        (match Xnet.Client.exec c "SELECT id FROM products" with
        | _ -> Alcotest.fail "expected Net_error after drain"
        | exception Xnet.Client.Net_error _ -> ());
        Xnet.Client.close c);
    tc "stats frame carries server gauges and plan-cache line" (fun () ->
        with_server (fun _db srv ->
            with_client srv (fun c ->
                ignore (Xnet.Client.exec c "SELECT id FROM products");
                let s = Xnet.Client.stats c in
                List.iter
                  (fun needle ->
                    Alcotest.(check bool)
                      (needle ^ " present") true
                      (contains_sub ~affix:needle s))
                  [
                    "xnet_requests_total";
                    "xnet_sessions_active";
                    "xnet_qps";
                    "xnet_uptime_seconds";
                    "plan_cache size=";
                  ])));
  ]

(* ------------------------------------------------------------------ *)
(* Wire v2: transactions, snapshot isolation, streaming cursors         *)
(* ------------------------------------------------------------------ *)

let count_rows (o : Xnet.Client.okay) =
  match o.Xnet.Client.payload with
  | Xnet.Proto.Wrows { rows; _ } -> List.length rows
  | Xnet.Proto.Witems items -> List.length items

let product_count c =
  count_rows (Xnet.Client.exec c "SELECT id FROM products")

let txn_tests =
  [
    tc "wire transaction: read-your-writes, isolation, conflict, commit"
      (fun () ->
        with_server (fun _db srv ->
            with_client srv (fun a ->
                with_client srv (fun b ->
                    let n0 = product_count b in
                    Xnet.Client.txn_begin a;
                    ignore
                      (Xnet.Client.exec a
                         "INSERT INTO products VALUES ('tx-1', 'wire txn')");
                    (* the writer reads its own uncommitted statement *)
                    check Alcotest.int "read-your-writes" (n0 + 1)
                      (product_count a);
                    (* the other session still reads the pre-transaction
                       snapshot *)
                    check Alcotest.int "isolated" n0 (product_count b);
                    (* a second read-write transaction is refused while
                       the first holds the writer slot *)
                    expect_error "XQDB0007" (fun () ->
                        Xnet.Client.txn_begin b);
                    Xnet.Client.txn_commit a;
                    check Alcotest.int "visible after commit" (n0 + 1)
                      (product_count b);
                    (* rollback undoes rows *)
                    Xnet.Client.txn_begin a;
                    ignore
                      (Xnet.Client.exec a
                         "INSERT INTO products VALUES ('tx-2', 'doomed')");
                    Xnet.Client.txn_rollback a;
                    check Alcotest.int "rolled back" (n0 + 1)
                      (product_count b);
                    check Alcotest.int "rolled back (writer view)" (n0 + 1)
                      (product_count a);
                    (* commit without an open transaction is an error the
                       session survives *)
                    expect_error "XQDB0007" (fun () ->
                        Xnet.Client.txn_commit a);
                    ignore (product_count a)))));
    tc "read-only wire transaction pins its snapshot" (fun () ->
        with_server (fun _db srv ->
            with_client srv (fun a ->
                with_client srv (fun b ->
                    Xnet.Client.txn_begin ~mode:Xnet.Proto.Read_only b;
                    let n = product_count b in
                    ignore
                      (Xnet.Client.exec a
                         "INSERT INTO products VALUES ('ro-1', 'autocommit')");
                    check Alcotest.int "snapshot pinned across a's commit" n
                      (product_count b);
                    (* writes are refused inside a read-only transaction *)
                    expect_error "XQDB0007" (fun () ->
                        Xnet.Client.exec b
                          "INSERT INTO products VALUES ('ro-2', 'nope')");
                    Xnet.Client.txn_commit b;
                    check Alcotest.int "fresh snapshot after commit" (n + 1)
                      (product_count b)))));
    tc "disconnect mid-transaction rolls it back" (fun () ->
        with_server (fun _db srv ->
            let n0 =
              with_client srv (fun c -> product_count c)
            in
            let fd, ic, oc = raw_connect srv in
            raw_hello oc ic;
            Xnet.Proto.write_frame oc
              (Xnet.Proto.encode_client
                 (Xnet.Proto.Begin { mode = Xnet.Proto.Read_write }));
            (match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
            | Xnet.Proto.Okay _ -> ()
            | _ -> Alcotest.fail "expected Okay after Begin");
            Xnet.Proto.write_frame oc
              (Xnet.Proto.encode_client
                 (Xnet.Proto.Exec
                    {
                      src =
                        "INSERT INTO products VALUES ('dc-1', 'vanishing')";
                      b = Xnet.Proto.no_bindings;
                    }));
            (match Xnet.Proto.decode_server (Xnet.Proto.read_frame ic) with
            | Xnet.Proto.Okay _ -> ()
            | _ -> Alcotest.fail "expected Okay after Exec");
            (* vanish without Commit: the server must roll back and
               release the writer slot *)
            Unix.close fd;
            Alcotest.(check bool)
              "session reaped" true
              (eventually (fun () -> Xnet.Server.active_sessions srv = 0));
            with_client srv (fun c ->
                check Alcotest.int "insert rolled back" n0 (product_count c);
                (* the writer slot is free again *)
                Xnet.Client.txn_begin c;
                Xnet.Client.txn_rollback c)));
    tc "100k-row cursor streams: first batch beats the full drain"
      (fun () ->
        with_server (fun db srv ->
            (* build the big table directly on the shared engine — the
               wire is not the thing under test here *)
            ignore (Engine.exec db "CREATE TABLE big (a integer)");
            for chunk = 0 to 99 do
              let vals =
                String.concat ", "
                  (List.init 1000 (fun i ->
                       Printf.sprintf "(%d)" ((chunk * 1000) + i)))
              in
              ignore (Engine.exec db ("INSERT INTO big VALUES " ^ vals))
            done;
            with_client srv (fun c ->
                let t0 = Unix.gettimeofday () in
                let cursor, _cols =
                  Xnet.Client.open_cursor c "SELECT a FROM big"
                in
                let first, finished =
                  Xnet.Client.fetch c ~cursor ~max:10
                in
                let t_first = Unix.gettimeofday () -. t0 in
                check Alcotest.int "first batch size" 10 (List.length first);
                check Alcotest.bool "not finished" false finished;
                let t1 = Unix.gettimeofday () in
                let drained = ref (List.length first) in
                let fin = ref false in
                while not !fin do
                  let elems, f = Xnet.Client.fetch c ~cursor ~max:20000 in
                  drained := !drained + List.length elems;
                  fin := f
                done;
                let t_drain = Unix.gettimeofday () -. t1 in
                check Alcotest.int "all rows" 100_000 !drained;
                (* a cursor that materialized at open would pay the full
                   100k-row cost before the first batch; a streaming one
                   pays ~10 rows. The margin is huge, so the timing
                   assertion is safe even on loaded CI machines. *)
                Alcotest.(check bool)
                  (Printf.sprintf
                     "first batch (%.1f ms) faster than full drain (%.1f ms)"
                     (1000. *. t_first) (1000. *. t_drain))
                  true
                  (t_first < t_drain))));
    tc "reader session completes probes while a bulk load runs" (fun () ->
        with_server (fun _db srv ->
            let writer_done = Atomic.make false in
            let writer_err = ref None in
            let writer =
              Thread.create
                (fun () ->
                  (try
                     with_client srv (fun w ->
                         for k = 1 to 40 do
                           ignore
                             (Xnet.Client.exec w
                                (Printf.sprintf
                                   "INSERT INTO orders VALUES (%d, \
                                    '<order><custid>%d</custid>\
                                    <lineitem price=\"9.5\">\
                                    <product><id>bulk</id></product>\
                                    </lineitem></order>')"
                                   (1000 + k) k))
                         done)
                   with e -> writer_err := Some e);
                  Atomic.set writer_done true)
                ()
            in
            (* the reader's probes run to completion while the load is
               in flight; every count it sees is a committed snapshot *)
            with_client srv (fun r ->
                let last = ref (-1) in
                let overlapped = ref false in
                while not (Atomic.get writer_done) do
                  let n =
                    count_rows
                      (Xnet.Client.exec r "SELECT ordid FROM orders")
                  in
                  if not (Atomic.get writer_done) then overlapped := true;
                  Alcotest.(check bool)
                    "monotonic committed counts" true (n >= !last);
                  last := n
                done;
                Thread.join writer;
                (match !writer_err with
                | Some e -> raise e
                | None -> ());
                Alcotest.(check bool)
                  "probes overlapped the load" true !overlapped;
                check Alcotest.int "final count" (30 + 40)
                  (count_rows
                     (Xnet.Client.exec r "SELECT ordid FROM orders")))));
  ]

(* Lockorder hygiene: with the thread-id provider installed (by
   Server.start), concurrent sessions must not fabricate phantom
   cross-thread edges — no cycle may involve the session-table lock or
   any of the engine's transaction-era locks (writer slot, snapshot
   pointer, compile lock), whose order is fixed by construction
   (engine.writer > engine.compile > engine.snapshot, "xnet.sessions"
   never nested with any of them). *)
let lockorder_tests =
  [
    tc "no lock-order cycle between server and engine locks under \
        concurrency" (fun () ->
        with_server (fun _db srv ->
            let threads =
              List.init 4 (fun i ->
                  Thread.create
                    (fun () ->
                      with_client srv (fun c ->
                          for j = 1 to 5 do
                            ignore
                              (Xnet.Client.exec c "SELECT ordid FROM orders");
                            (* mix writes in so the writer/snapshot locks
                               see traffic from several threads *)
                            ignore
                              (Xnet.Client.exec c
                                 (Printf.sprintf
                                    "INSERT INTO products VALUES \
                                     ('lk-%d-%d', 'lock order')" i j))
                          done))
                    ())
            in
            List.iter Thread.join threads;
            let cycles = Xpar.Lockorder.cycles () in
            let watched =
              [
                "xnet.sessions"; "engine.writer"; "engine.snapshot";
                "engine.compile";
              ]
            in
            let server_cycle =
              List.exists (List.exists (fun n -> List.mem n watched)) cycles
            in
            Alcotest.(check bool)
              "no potential deadlock involving server or engine locks" false
              server_cycle));
  ]

let suite =
  [
    ("xnet:codec", codec_unit_tests);
    ( "xnet:prop",
      List.map QCheck_alcotest.to_alcotest
        [ prop_client_roundtrip; prop_server_roundtrip; prop_decoder_total ] );
    ("xnet:torture", torture_tests);
    ("xnet:session", session_tests);
    ("xnet:txn", txn_tests);
    ("xnet:lockorder", lockorder_tests);
  ]
