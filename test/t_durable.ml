(** Durable storage: pager + WAL round-trips, checkpointing, and the
    fault-injected crash-recovery torture suite.

    The torture suite's invariant: crash the engine (abandon in-memory
    state, drop file descriptors without syncing) at *every* registered
    fault point during bulk loads, UPDATEs and CREATE INDEX backfills;
    reopening the data directory must yield a database that

    - passes {!Engine.check_consistency} with no discrepancies, and
    - is byte-identical (tables, row ids, values, index entry counts) to
      a never-crashed in-memory run of exactly the statements that
      committed.

    A fault that lands between a statement's in-memory commit and its WAL
    commit record reaching the log (e.g. an injected [wal.fsync]) is the
    classic ambiguous-commit window: the statement is allowed to be
    either in or out, but never half-applied — the recovered state must
    match the reference either without or with that one statement. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Scratch data directories                                            *)
(* ------------------------------------------------------------------ *)

let dir_ctr = ref 0

let fresh_dir () =
  incr dir_ctr;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "xqdb-test-%d-%d.xqdb" (Unix.getpid ()) !dir_ctr)

let rec rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Canonical state dumps                                               *)
(* ------------------------------------------------------------------ *)

(** Render the engine's whole logical state — every table's rows (with
    row ids) plus every index's entry count — as one comparable string.
    XML values round-trip through the serializer, so the rendering is
    stable across save/load cycles even though node ids are not. *)
let state db =
  let b = Buffer.create 4096 in
  let tables =
    List.sort
      (fun (a : Storage.Table.t) b -> compare a.Storage.Table.name b.Storage.Table.name)
      (Storage.Database.tables (Engine.database db))
  in
  List.iter
    (fun (t : Storage.Table.t) ->
      Buffer.add_string b ("== " ^ t.Storage.Table.name ^ "\n");
      List.iter
        (fun (r : Storage.Table.row) ->
          Buffer.add_string b (string_of_int r.Storage.Table.row_id);
          Array.iter
            (fun v ->
              Buffer.add_char b '|';
              Buffer.add_string b (Storage.Sql_value.to_display v))
            r.Storage.Table.values;
          Buffer.add_char b '\n')
        (List.sort
           (fun (a : Storage.Table.row) b ->
             compare a.Storage.Table.row_id b.Storage.Table.row_id)
           (Storage.Table.rows t)))
    tables;
  List.iter
    (fun (i : Xmlindex.Xindex.t) ->
      Buffer.add_string b
        (Printf.sprintf "xidx %s %d\n"
           i.Xmlindex.Xindex.def.Xmlindex.Xindex.iname
           (Xmlindex.Xindex.entry_count i)))
    (List.sort
       (fun (a : Xmlindex.Xindex.t) b ->
         compare a.Xmlindex.Xindex.def.Xmlindex.Xindex.iname
           b.Xmlindex.Xindex.def.Xmlindex.Xindex.iname)
       (Engine.xml_indexes db));
  List.iter
    (fun (i : Xmlindex.Rel_index.t) ->
      Buffer.add_string b
        (Printf.sprintf "ridx %s %d\n" i.Xmlindex.Rel_index.iname
           (Xmlindex.Rel_index.entry_count i)))
    (List.sort
       (fun (a : Xmlindex.Rel_index.t) b ->
         compare a.Xmlindex.Rel_index.iname b.Xmlindex.Rel_index.iname)
       (Engine.rel_indexes db));
  List.iter
    (fun (i : Xmlindex.Structindex.t) ->
      Buffer.add_string b
        (Printf.sprintf "sidx %s %d %d\n"
           i.Xmlindex.Structindex.def.Xmlindex.Structindex.iname
           (Xmlindex.Structindex.doc_count i)
           (Xmlindex.Structindex.node_count i)))
    (List.sort
       (fun (a : Xmlindex.Structindex.t) b ->
         compare a.Xmlindex.Structindex.def.Xmlindex.Structindex.iname
           b.Xmlindex.Structindex.def.Xmlindex.Structindex.iname)
       (Engine.struct_indexes db));
  Buffer.contents b

let assert_consistent db =
  List.iter
    (fun (iname, diffs) ->
      check Alcotest.(list string) (iname ^ " consistent") [] diffs)
    (Engine.check_consistency db)

let counter db name = !(Xprof.Registry.counter (Engine.registry db) name)

(* ------------------------------------------------------------------ *)
(* Workloads: named statement sequences                                *)
(* ------------------------------------------------------------------ *)

let sqlop s = (s, fun db -> ignore (sql db s))

(* Big enough that the checkpoint's snapshot exceeds the 64-page buffer
   pool, so the eviction/write-back paths (page.evict, page.write) are
   genuinely exercised. *)
let pad = String.make 2800 'x'
let fat_doc i = Printf.sprintf "<a><p>%d</p><q>%s</q></a>" i pad

let bulk_load_ops =
  [
    sqlop "CREATE TABLE t (a integer, d XML)";
    sqlop "CREATE INDEX ip ON t(d) USING XMLPATTERN '//p' AS DOUBLE";
    ( "bulk load 100 fat docs",
      fun db ->
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 100 fat_doc) );
    ("checkpoint", Engine.checkpoint);
    ( "load 10 more",
      fun db ->
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 10 (fun i -> Printf.sprintf "<a><p>%d</p></a>" (500 + i)))
    );
  ]

let update_ops =
  [
    sqlop "CREATE TABLE t (a integer, d XML)";
    sqlop "CREATE INDEX ip ON t(d) USING XMLPATTERN '//p' AS DOUBLE";
    ( "load 25 docs",
      fun db ->
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 25 (fun i -> Printf.sprintf "<a><p>%d</p></a>" i)) );
    ("checkpoint", Engine.checkpoint);
    sqlop
      "UPDATE t SET d = XMLQUERY('<a><p>{$D/a/p + 1000}</p></a>' PASSING d \
       AS \"D\")";
    sqlop "UPDATE t SET a = 777 WHERE a = 3";
  ]

let backfill_ops =
  [
    sqlop "CREATE TABLE t (a integer, d XML)";
    ( "load 60 docs",
      fun db ->
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 60 (fun i ->
               Printf.sprintf "<a><p>%d</p><p>%d</p></a>" i (i + 1000))) );
    ("checkpoint", Engine.checkpoint);
    sqlop "CREATE INDEX ip2 ON t(d) USING XMLPATTERN '//p' AS DOUBLE";
    sqlop "INSERT INTO t VALUES (999, '<a><p>999</p></a>')";
  ]

(* The structural (pre/post) encoding under the same torture: build the
   index over live rows, mutate through every hook path (insert, UPDATE =
   delete+insert, DELETE), checkpoint mid-stream. The armed
   structindex.insert_doc / structindex.remove_doc points fire inside
   encoding maintenance; recovery must then rebuild encodings that pass
   [Engine.check_consistency]'s interval laws (assert_consistent above
   runs on every recovered engine). *)
let struct_ops =
  [
    sqlop "CREATE TABLE t (a integer, d XML)";
    ( "load 25 docs",
      fun db ->
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 25 (fun i ->
               Printf.sprintf "<a q=\"%d\"><p>%d</p><r>%d</r></a>" i i
                 (i + 1000))) );
    sqlop "CREATE STRUCTURAL INDEX st ON t(d)";
    ("checkpoint", Engine.checkpoint);
    sqlop
      "UPDATE t SET d = XMLQUERY('<a><p>{$D/a/p + 1}</p></a>' PASSING d AS \
       \"D\")";
    sqlop "DELETE FROM t WHERE a = 7";
    sqlop "INSERT INTO t VALUES (999, '<a><p>999</p></a>')";
  ]

(** State after running the first [k] operations (plus, with [extra],
    the (k+1)th) on a fresh in-memory engine that never faults. *)
let reference ops k extra =
  let db = Engine.create () in
  List.iteri (fun i (_, f) -> if i < k || (extra && i = k) then f db) ops;
  state db

(* Which fault points actually fired somewhere in the sweep: the
   coverage assertion at the end of the suite proves no registered point
   was a dead letter. *)
let fired : (string, unit) Hashtbl.t = Hashtbl.create 16

(** One crash/recover cycle: open a fresh durable engine, run the
    workload with [point] armed at countdown [n], crash, reopen, and
    require the recovered state to be consistent and equal to the
    committed-prefix reference (with the one-statement ambiguity window
    when the fault fired mid-commit). *)
let crash_cycle ~par ~point ~n ops =
  with_dir (fun dir ->
      let db = Engine.open_db ~data_dir:dir () in
      Engine.set_parallelism db par;
      let completed = ref 0 in
      let faulted = ref false in
      Faultinject.with_fault ~point ~n (fun () ->
          try
            List.iter
              (fun (_, f) ->
                f db;
                incr completed)
              ops
          with Faultinject.Injected _ -> faulted := true);
      if !faulted then Hashtbl.replace fired point ();
      Engine.simulate_crash db;
      let db2 = Engine.open_db ~data_dir:dir () in
      Fun.protect
        ~finally:(fun () -> Engine.close db2)
        (fun () ->
          assert_consistent db2;
          let recovered = state db2 in
          let ok =
            recovered = reference ops !completed false
            || (!faulted
               && !completed < List.length ops
               && recovered = reference ops !completed true)
          in
          if not ok then
            Alcotest.failf
              "recovered state diverges: point=%s n=%d par=%d (completed \
               %d/%d statements, fault %s)"
              point n par !completed (List.length ops)
              (if !faulted then "fired" else "did not fire")))

let sweep_tc name ops ~par ~ns =
  tc
    (Printf.sprintf "%s: crash sweep over every point (par %d)" name par)
    (fun () ->
      List.iter
        (fun point -> List.iter (fun n -> crash_cycle ~par ~point ~n ops) ns)
        (Faultinject.points ()))

(* -- explicit transactions: crash-mid-commit all-or-nothing -------- *)

let txn_setup db =
  ignore (sql db "CREATE TABLE t (a integer, d XML)");
  ignore
    (sql db "CREATE INDEX ip ON t(d) USING XMLPATTERN '//p' AS DOUBLE");
  ignore (sql db "INSERT INTO t VALUES (1, '<a><p>1</p></a>')")

(* Three DML statements in one explicit transaction: the WAL must treat
   them as a single group, so a crash anywhere inside (or during the
   commit itself) recovers to the pre-txn state or the full post-txn
   state — never to one or two of the statements. *)
let txn_body db =
  let tx = Engine.Txn.begin_ db in
  Fun.protect
    ~finally:(fun () ->
      (* a fault abandons the handle mid-transaction; a real crash takes
         the process's locks with it, but the in-process simulation must
         release the writer slot (and its Lockorder held-stack entry) or
         the leak bleeds into later tests. Rolling back writes nothing
         to the WAL, so the on-disk crash state is untouched. *)
      if Engine.Txn.active tx then
        try Engine.Txn.rollback tx with _ -> ())
    (fun () ->
      ignore
        (Engine.exec ~txn:tx db "INSERT INTO t VALUES (2, '<a><p>2</p></a>')");
      ignore
        (Engine.exec ~txn:tx db
           "UPDATE t SET d = '<a><p>100</p></a>' WHERE a = 1");
      ignore
        (Engine.exec ~txn:tx db "INSERT INTO t VALUES (3, '<a><p>3</p></a>')");
      Engine.Txn.commit tx)

let txn_reference with_txn =
  let db = Engine.create () in
  txn_setup db;
  if with_txn then txn_body db;
  state db

let txn_crash_cycle ~par ~point ~n =
  with_dir (fun dir ->
      let db = Engine.open_db ~data_dir:dir () in
      Engine.set_parallelism db par;
      txn_setup db;
      let committed = ref false and faulted = ref false in
      Faultinject.with_fault ~point ~n (fun () ->
          try
            txn_body db;
            committed := true
          with Faultinject.Injected _ -> faulted := true);
      if !faulted then Hashtbl.replace fired point ();
      Engine.simulate_crash db;
      let db2 = Engine.open_db ~data_dir:dir () in
      Fun.protect
        ~finally:(fun () -> Engine.close db2)
        (fun () ->
          assert_consistent db2;
          let recovered = state db2 in
          (* a commit that returned must be durable; a fault leaves the
             ambiguous window around the Commit record — in or out, but
             never half-applied *)
          let ok =
            (recovered = txn_reference true && (!committed || !faulted))
            || (recovered = txn_reference false && not !committed)
          in
          if not ok then
            Alcotest.failf
              "txn recovered to a partial state: point=%s n=%d par=%d \
               (commit %s, fault %s)"
              point n par
              (if !committed then "returned" else "did not return")
              (if !faulted then "fired" else "did not fire")))

let txn_sweep_tc ~par ~ns =
  tc
    (Printf.sprintf
       "crash-mid-commit txn: all-or-nothing over every point (par %d)" par)
    (fun () ->
      List.iter
        (fun point ->
          List.iter (fun n -> txn_crash_cycle ~par ~point ~n) ns)
        (Faultinject.points ()))

let torture_tests =
  [
    sweep_tc "bulk load" bulk_load_ops ~par:1 ~ns:[ 1; 7 ];
    sweep_tc "bulk load" bulk_load_ops ~par:4 ~ns:[ 1 ];
    sweep_tc "UPDATE" update_ops ~par:1 ~ns:[ 1; 7 ];
    sweep_tc "UPDATE" update_ops ~par:4 ~ns:[ 1 ];
    sweep_tc "CREATE INDEX backfill" backfill_ops ~par:1 ~ns:[ 1; 7 ];
    sweep_tc "CREATE INDEX backfill" backfill_ops ~par:4 ~ns:[ 1 ];
    sweep_tc "structural index" struct_ops ~par:1 ~ns:[ 1; 7 ];
    sweep_tc "structural index" struct_ops ~par:4 ~ns:[ 1 ];
    txn_sweep_tc ~par:1 ~ns:[ 1; 5 ];
    txn_sweep_tc ~par:2 ~ns:[ 1 ];
    txn_sweep_tc ~par:4 ~ns:[ 1 ];
    tc "coverage: every registered fault point fired somewhere" (fun () ->
        List.iter
          (fun p ->
            check Alcotest.bool (p ^ " fired") true (Hashtbl.mem fired p))
          (Faultinject.points ()));
  ]

(* ------------------------------------------------------------------ *)
(* Plain durability round-trips                                        *)
(* ------------------------------------------------------------------ *)

let setup_small db =
  ignore (sql db "CREATE TABLE t (a integer, w date, d XML)");
  ignore
    (sql db "CREATE INDEX ip ON t(d) USING XMLPATTERN '//p' AS DOUBLE");
  ignore (sql db "CREATE INDEX ra ON t(a)");
  for i = 1 to 8 do
    ignore
      (sql db
         (Printf.sprintf
            "INSERT INTO t VALUES (%d, '2006-0%d-15', '<a><p>%d</p></a>')" i
            (1 + (i mod 9)) i))
  done

let roundtrip_tests =
  [
    tc "WAL-only reopen (no checkpoint) recovers everything" (fun () ->
        with_dir (fun dir ->
            let db = Engine.open_db ~data_dir:dir () in
            setup_small db;
            let before = state db in
            check Alcotest.(option string) "data_dir" (Some dir)
              (Engine.data_dir db);
            check Alcotest.bool "wal_appends counted" true
              (counter db "wal_appends" > 0);
            check Alcotest.bool "wal_fsyncs counted" true
              (counter db "wal_fsyncs" > 0);
            Engine.close db;
            let db2 = Engine.open_db ~data_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Engine.close db2)
              (fun () ->
                check Alcotest.string "state" before (state db2);
                assert_consistent db2;
                check Alcotest.bool "redo records replayed" true
                  (counter db2 "recovery_redo_records" > 0);
                (* the index works after recovery *)
                check Alcotest.int "probe" 1
                  (sql_count db2
                     "SELECT a FROM t WHERE XMLEXISTS('$D//p[. = 5]' \
                      PASSING d AS \"D\")"))));
    tc "checkpoint truncates the WAL: reopen has zero redo" (fun () ->
        with_dir (fun dir ->
            let db = Engine.open_db ~data_dir:dir () in
            setup_small db;
            Engine.checkpoint db;
            let before = state db in
            check Alcotest.bool "pages written" true
              (counter db "page_writes" > 0);
            Engine.close db;
            let db2 = Engine.open_db ~data_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Engine.close db2)
              (fun () ->
                check Alcotest.int "no redo" 0
                  (counter db2 "recovery_redo_records");
                check Alcotest.bool "pages read" true
                  (counter db2 "page_reads" > 0);
                check Alcotest.string "state" before (state db2);
                assert_consistent db2)));
    tc "statements after a checkpoint replay on top of the snapshot"
      (fun () ->
        with_dir (fun dir ->
            let db = Engine.open_db ~data_dir:dir () in
            setup_small db;
            Engine.checkpoint db;
            ignore
              (sql db
                 "INSERT INTO t VALUES (99, NULL, '<a><p>99</p></a>')");
            ignore (sql db "DELETE FROM t WHERE a = 2");
            let before = state db in
            Engine.close db;
            let db2 = Engine.open_db ~data_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Engine.close db2)
              (fun () ->
                check Alcotest.string "state" before (state db2);
                check Alcotest.bool "redo replayed" true
                  (counter db2 "recovery_redo_records" > 0);
                assert_consistent db2)));
    tc "close leaves a working in-memory handle" (fun () ->
        with_dir (fun dir ->
            let db = Engine.open_db ~data_dir:dir () in
            setup_small db;
            Engine.close db;
            check Alcotest.(option string) "detached" None (Engine.data_dir db);
            (* mutations still work; they are just no longer durable *)
            ignore
              (sql db "INSERT INTO t VALUES (50, NULL, '<a><p>50</p></a>')");
            let db2 = Engine.open_db ~data_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Engine.close db2)
              (fun () ->
                check Alcotest.int "post-close insert not durable" 0
                  (sql_count db2 "SELECT a FROM t WHERE a = 50"))));
    tc "in-memory handle: durability entry points are no-ops" (fun () ->
        let db = Engine.create () in
        check Alcotest.(option string) "no dir" None (Engine.data_dir db);
        Engine.checkpoint db;
        Engine.close db;
        Engine.simulate_crash db);
    tc "structural index survives WAL-only reopen and checkpoint round-trip"
      (fun () ->
        with_dir (fun dir ->
            let db = Engine.open_db ~data_dir:dir () in
            setup_small db;
            ignore (sql db "CREATE STRUCTURAL INDEX st ON t(d)");
            let q =
              "db2-fn:xmlcolumn('T.D')//p/parent::a"
            in
            let expect = Engine.to_xml (Engine.outcome_items (Engine.exec db q)) in
            let before = state db in
            (* WAL-only: the definition replays, encodings rebuild *)
            Engine.close db;
            let db2 = Engine.open_db ~data_dir:dir () in
            check Alcotest.string "state after WAL replay" before (state db2);
            assert_consistent db2;
            let o = Engine.exec db2 q in
            check Alcotest.string "structural answer survives" expect
              (Engine.to_xml (Engine.outcome_items o));
            check Alcotest.bool "served by the structural join" true
              (List.exists (contains_sub ~affix:"PSTRUCTJOIN") o.Engine.notes);
            (* checkpoint: the definition rides the snapshot catalog *)
            Engine.checkpoint db2;
            ignore (sql db2 "INSERT INTO t VALUES (77, NULL, '<a><p>77</p></a>')");
            let before2 = state db2 in
            Engine.close db2;
            let db3 = Engine.open_db ~data_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Engine.close db3)
              (fun () ->
                check Alcotest.string "state after snapshot + redo" before2
                  (state db3);
                assert_consistent db3;
                check Alcotest.bool "index still lists" true
                  (List.exists
                     (fun (i : Xmlindex.Structindex.t) ->
                       i.Xmlindex.Structindex.def.Xmlindex.Structindex.iname
                       = "st")
                     (Engine.struct_indexes db3)))));
    tc "sync:false loads survive a clean close" (fun () ->
        with_dir (fun dir ->
            let db = Engine.open_db ~sync:false ~data_dir:dir () in
            setup_small db;
            check Alcotest.int "no fsync in sync:false mode" 0
              (counter db "wal_fsyncs");
            let before = state db in
            Engine.close db;
            let db2 = Engine.open_db ~data_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Engine.close db2)
              (fun () -> check Alcotest.string "state" before (state db2))));
  ]

(* ------------------------------------------------------------------ *)
(* Format guards (XQDB0005)                                            *)
(* ------------------------------------------------------------------ *)

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let format_tests =
  [
    tc "foreign non-empty directory is refused" (fun () ->
        with_dir (fun dir ->
            Unix.mkdir dir 0o755;
            write_file (Filename.concat dir "junk.txt") "hello";
            expect_error "XQDB0005" (fun () ->
                Engine.open_db ~data_dir:dir ())));
    tc "incompatible format version is refused" (fun () ->
        with_dir (fun dir ->
            Unix.mkdir dir 0o755;
            write_file (Filename.concat dir "MANIFEST")
              "xqdb-format 99\ngeneration 0\n";
            expect_error "XQDB0005" (fun () ->
                Engine.open_db ~data_dir:dir ())));
    tc "corrupt MANIFEST is refused" (fun () ->
        with_dir (fun dir ->
            Unix.mkdir dir 0o755;
            write_file (Filename.concat dir "MANIFEST") "what is this\n";
            expect_error "XQDB0005" (fun () ->
                Engine.open_db ~data_dir:dir ())));
    tc "corrupt snapshot magic is refused" (fun () ->
        with_dir (fun dir ->
            let db = Engine.open_db ~data_dir:dir () in
            setup_small db;
            Engine.checkpoint db;
            Engine.close db;
            let snap = Filename.concat dir "snapshot.1.pages" in
            let data = In_channel.with_open_bin snap In_channel.input_all in
            write_file snap ("XXXX" ^ String.sub data 4 (String.length data - 4));
            expect_error "XQDB0005" (fun () ->
                Engine.open_db ~data_dir:dir ())));
    tc "orphan files from a crashed checkpoint are swept on open" (fun () ->
        with_dir (fun dir ->
            let db = Engine.open_db ~data_dir:dir () in
            setup_small db;
            let before = state db in
            (* a checkpoint that crashed before publishing: half-written
               next-generation files that must not confuse recovery *)
            write_file (Filename.concat dir "snapshot.1.pages") "garbage";
            write_file (Filename.concat dir "wal.1.log") "garbage";
            write_file (Filename.concat dir "MANIFEST.tmp") "torn";
            Engine.simulate_crash db;
            let db2 = Engine.open_db ~data_dir:dir () in
            Fun.protect
              ~finally:(fun () -> Engine.close db2)
              (fun () ->
                check Alcotest.string "state" before (state db2);
                check Alcotest.bool "orphan snapshot removed" false
                  (Sys.file_exists (Filename.concat dir "snapshot.1.pages")))));
  ]

(* ------------------------------------------------------------------ *)
(* Torn-write property                                                 *)
(* ------------------------------------------------------------------ *)

(** Truncate the WAL at a random offset and flip a random byte of what
    remains, then reopen: recovery must surface a *committed prefix* of
    the statements — never a half-applied one — with indexes consistent. *)
let torn_write_prop =
  QCheck.Test.make ~count:35
    ~name:"torn/corrupt WAL tail recovers to a committed prefix"
    QCheck.(
      triple (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 255))
    (fun (tpos, fpos, byte) ->
      with_dir (fun dir ->
          let db = Engine.open_db ~sync:false ~data_dir:dir () in
          ignore (sql db "CREATE TABLE t (a integer, d XML)");
          ignore
            (sql db
               "CREATE INDEX ip ON t(d) USING XMLPATTERN '//p' AS DOUBLE");
          for i = 1 to 12 do
            ignore
              (sql db
                 (Printf.sprintf
                    "INSERT INTO t VALUES (%d, '<a><p>%d</p></a>')" i i))
          done;
          Engine.close db;
          let wal = Filename.concat dir "wal.0.log" in
          let data = In_channel.with_open_bin wal In_channel.input_all in
          let keep = tpos mod (String.length data + 1) in
          let b = Bytes.of_string (String.sub data 0 keep) in
          if keep > 0 then Bytes.set b (fpos mod keep) (Char.chr byte);
          Out_channel.with_open_bin wal (fun oc ->
              Out_channel.output_bytes oc b);
          let db2 = Engine.open_db ~data_dir:dir () in
          Fun.protect
            ~finally:(fun () -> Engine.close db2)
            (fun () ->
              assert_consistent db2;
              (* whatever survived must be an exact statement prefix:
                 CREATE TABLE, then CREATE INDEX, then rows 1..k *)
              match
                List.map
                  (fun (t : Storage.Table.t) -> t.Storage.Table.name)
                  (Storage.Database.tables (Engine.database db2))
              with
              | [] ->
                  check Alcotest.int "no table, no indexes" 0
                    (List.length (Engine.xml_indexes db2));
                  true
              | [ _ ] ->
                  let rows =
                    List.sort compare
                      (List.concat_map
                         (List.map Storage.Sql_value.to_display)
                         (sql db2 "SELECT a FROM t").Sqlxml.Sql_exec
                           .rrows)
                  in
                  let k = List.length rows in
                  check
                    Alcotest.(list string)
                    "rows are the prefix 1..k"
                    (List.sort compare
                       (List.init k (fun i -> string_of_int (i + 1))))
                    rows;
                  true
              | ts -> Alcotest.failf "unexpected tables: %s" (String.concat "," ts))))

let suite =
  [
    ("durable:roundtrip", roundtrip_tests);
    ("durable:format", format_tests);
    ("durable:torture", torture_tests);
    ("durable:torn", [ QCheck_alcotest.to_alcotest torn_write_prop ]);
  ]
