(** The sealed Engine API: prepared statements, the compiled-plan cache
    (hit/miss/invalidation/eviction), parameter binding errors, streaming
    cursors and their governor interaction, and the prepared ≡ direct
    equivalence property over the paper's query corpus. *)

open Helpers
module SV = Storage.Sql_value
module PC = Engine.Plan_cache

let item_str s = [ Xdm.Item.A (Xdm.Atomic.Str s) ]

(** Serialize an outcome so both front ends compare with [string]. *)
let render (o : Engine.outcome) : string =
  match o.Engine.payload with
  | Engine.Rows { cols; rows } ->
      String.concat "," cols ^ "\n"
      ^ String.concat "\n"
          (List.map
             (fun row -> String.concat "|" (List.map SV.to_display row))
             rows)
  | Engine.Items items -> Engine.to_xml items

let diag_with (o : Engine.outcome) affix =
  List.exists (fun d -> contains_sub ~affix d) o.Engine.diagnostics

(* ------------------------------------------------------------------ *)
(* Plan_cache unit tests                                               *)
(* ------------------------------------------------------------------ *)

let cache_unit =
  [
    tc "plan cache: miss, add, hit, stale generation and fingerprint"
      (fun () ->
        let c = PC.create ~capacity:4 () in
        check Alcotest.bool "initial miss" true
          (PC.find c ~gen:0 ~fp:"lax" "q" = None);
        ignore (PC.add c ~gen:0 ~fp:"lax" "q" 42);
        check (Alcotest.option Alcotest.int) "hit" (Some 42)
          (PC.find c ~gen:0 ~fp:"lax" "q");
        (* a DDL-style generation bump invalidates *)
        check (Alcotest.option Alcotest.int) "stale gen" None
          (PC.find c ~gen:1 ~fp:"lax" "q");
        ignore (PC.add c ~gen:1 ~fp:"lax" "q" 43);
        (* a settings change invalidates independently of the catalog *)
        check (Alcotest.option Alcotest.int) "stale fingerprint" None
          (PC.find c ~gen:1 ~fp:"strict" "q");
        let s = PC.stats c in
        check Alcotest.int "hits" 1 s.PC.hits;
        check Alcotest.int "misses" 3 s.PC.misses;
        check Alcotest.int "invalidations" 2 s.PC.invalidations;
        check Alcotest.int "evictions" 0 s.PC.evictions);
    tc "plan cache: LRU eviction prefers the least recently used" (fun () ->
        let c = PC.create ~capacity:2 () in
        ignore (PC.add c ~gen:0 ~fp:"" "a" 1);
        ignore (PC.add c ~gen:0 ~fp:"" "b" 2);
        (* touch [a], making [b] the LRU victim *)
        ignore (PC.find c ~gen:0 ~fp:"" "a");
        check Alcotest.bool "adding c evicts" true
          (PC.add c ~gen:0 ~fp:"" "c" 3);
        check (Alcotest.option Alcotest.int) "a survives" (Some 1)
          (PC.find c ~gen:0 ~fp:"" "a");
        check (Alcotest.option Alcotest.int) "b evicted" None
          (PC.find c ~gen:0 ~fp:"" "b");
        (* replacing an existing key is not an eviction *)
        check Alcotest.bool "replace same key" false
          (PC.add c ~gen:0 ~fp:"" "c" 4);
        let s = PC.stats c in
        check Alcotest.int "size" 2 s.PC.size;
        check Alcotest.int "evictions" 1 s.PC.evictions);
  ]

(* ------------------------------------------------------------------ *)
(* Engine-level cache behaviour                                        *)
(* ------------------------------------------------------------------ *)

let q_scan = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>990]"

let engine_cache =
  [
    tc "exec: second run is a plan-cache hit, for both front ends"
      (fun () ->
        let db = paper_db ~n_orders:12 () in
        let s0 = Engine.plan_cache_stats db in
        let o1 = Engine.exec db q_scan in
        let o2 = Engine.exec db q_scan in
        check Alcotest.bool "first is a miss" true
          (diag_with o1 "miss, compiled");
        check Alcotest.bool "second is a hit" true (diag_with o2 "plan cache: hit");
        check Alcotest.string "same answer" (render o1) (render o2);
        let osql1 = Engine.exec db "SELECT ordid FROM orders" in
        let osql2 = Engine.exec db "SELECT ordid FROM orders" in
        check Alcotest.bool "sql miss then hit" true
          (diag_with osql1 "miss, compiled" && diag_with osql2 "plan cache: hit");
        let s1 = Engine.plan_cache_stats db in
        check Alcotest.int "two misses" (s0.PC.misses + 2) s1.PC.misses;
        check Alcotest.int "two hits" (s0.PC.hits + 2) s1.PC.hits);
    tc "CREATE INDEX invalidates and the recompiled plan uses the index"
      (fun () ->
        let db = paper_db ~n_orders:12 () in
        let o1 = Engine.exec db q_scan in
        check Alcotest.bool "no index yet" true (o1.Engine.indexes_used = []);
        ignore
          (Engine.exec db
             "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
              '//lineitem/@price' AS DOUBLE");
        let o2 = Engine.exec db q_scan in
        check Alcotest.bool "diagnosed as invalidated" true
          (diag_with o2 "invalidated");
        check Alcotest.bool "new plan uses li_price" true
          (List.mem "li_price" o2.Engine.indexes_used);
        check Alcotest.string "same answer either way" (render o1) (render o2));
    tc "DROP INDEX and bulk load invalidate too" (fun () ->
        let db = paper_db ~n_orders:12 () in
        ignore
          (Engine.exec db
             "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
              '//lineitem/@price' AS DOUBLE");
        ignore (Engine.exec db q_scan);
        let inv0 = (Engine.plan_cache_stats db).PC.invalidations in
        ignore (Engine.exec db "DROP INDEX li_price");
        let o = Engine.exec db q_scan in
        check Alcotest.bool "drop invalidates" true (diag_with o "invalidated");
        check Alcotest.bool "index no longer used" true
          (o.Engine.indexes_used = []);
        Engine.load_documents db ~table:"orders" ~column:"orddoc"
          [ "<order><lineitem price=\"995\"/></order>" ];
        let o2 = Engine.exec db q_scan in
        check Alcotest.bool "load invalidates" true (diag_with o2 "invalidated");
        check Alcotest.int "two invalidations counted" (inv0 + 2)
          (Engine.plan_cache_stats db).PC.invalidations);
    tc "settings fingerprint: toggling strict types forces a recompile"
      (fun () ->
        let db = paper_db ~n_orders:12 () in
        ignore (Engine.exec db q_scan);
        Engine.set_strict_types db true;
        let o = Engine.exec db q_scan in
        check Alcotest.bool "recompiled under new fingerprint" true
          (diag_with o "invalidated");
        Engine.set_strict_types db false);
    tc "cache capacity: distinct statements evict, answers stay correct"
      (fun () ->
        let db = Engine.create () in
        for i = 1 to 140 do
          ignore (Engine.exec db (Printf.sprintf "VALUES (%d)" i))
        done;
        let s = Engine.plan_cache_stats db in
        check Alcotest.bool "evictions happened" true (s.PC.evictions > 0);
        check Alcotest.bool "size bounded" true (s.PC.size <= s.PC.capacity);
        let o = Engine.exec db "VALUES (1)" in
        check Alcotest.int "evicted statement still answers" 1
          (List.length (Engine.outcome_rows o)));
  ]

(* ------------------------------------------------------------------ *)
(* Prepared statements & parameter binding                             *)
(* ------------------------------------------------------------------ *)

let prepared =
  [
    tc "prepare/execute: SQL ? parameters" (fun () ->
        let db = paper_db ~n_orders:12 () in
        let st = Engine.prepare db "SELECT ordid FROM orders WHERE ordid = ?" in
        check (Alcotest.list Alcotest.string) "one positional slot" [ "?1" ]
          (Engine.stmt_params st);
        let rows p = Engine.outcome_rows (Engine.execute ~params:p st) in
        check Alcotest.int "ordid=3 finds one row" 1
          (List.length (rows [ SV.Int 3L ]));
        check Alcotest.int "ordid=-1 finds none" 0
          (List.length (rows [ SV.Int (-1L) ]));
        expect_error "XPDY0002" (fun () -> rows []);
        expect_error "XPDY0002" (fun () -> rows [ SV.Int 1L; SV.Int 2L ]);
        (* named vars make no sense against a SQL statement *)
        expect_error "XPTY0004" (fun () ->
            Engine.execute ~vars:[ ("p", item_str "x") ] st));
    tc "prepare/execute: XQuery $var parameters" (fun () ->
        let db = paper_db ~n_orders:30 () in
        let st =
          Engine.prepare db
            "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem \
             where $i/product/id = $pid return $i/quantity"
        in
        check (Alcotest.list Alcotest.string) "one named slot" [ "pid" ]
          (Engine.stmt_params st);
        let run v =
          Engine.outcome_items (Engine.execute ~vars:[ ("pid", item_str v) ] st)
        in
        check Alcotest.bool "pid=p3 finds quantities" true
          (List.length (run "p3") > 0);
        check Alcotest.int "pid=nope finds none" 0 (List.length (run "nope"));
        expect_error "XPDY0002" (fun () -> Engine.execute st);
        expect_error "XPST0008" (fun () ->
            Engine.execute ~vars:[ ("wrong", item_str "p3") ] st));
    tc "parameter literals: FORG0001 on a bad typed binding" (fun () ->
        expect_error "FORG0001" (fun () ->
            Engine.atomic_of_string ~ty:Xdm.Atomic.TInteger "not-a-number");
        expect_error "FORG0001" (fun () ->
            Engine.atomic_of_string ~ty:Xdm.Atomic.TDouble "p3");
        check Alcotest.string "good cast still works" "42"
          (Xdm.Atomic.string_value
             (Engine.atomic_of_string ~ty:Xdm.Atomic.TInteger "42")));
    tc "prepared statement survives invalidation transparently" (fun () ->
        let db = paper_db ~n_orders:12 () in
        let st = Engine.prepare db q_scan in
        let before = render (Engine.execute st) in
        ignore
          (Engine.exec db
             "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
              '//lineitem/@price' AS DOUBLE");
        let o = Engine.execute st in
        check Alcotest.bool "re-planned against the new catalog" true
          (List.mem "li_price" o.Engine.indexes_used);
        check Alcotest.string "same answer" before (render o));
  ]

(* ------------------------------------------------------------------ *)
(* Error-path regression: sealed entry points raise coded errors only  *)
(* ------------------------------------------------------------------ *)

let errors =
  [
    tc "SQL front end: coded errors from exec" (fun () ->
        let db = paper_db ~n_orders:4 () in
        expect_error "XPST0003" (fun () -> Engine.exec db "SELECT FROM WHERE");
        expect_error "XQDB0003" (fun () ->
            Engine.exec db "SELECT nosuch FROM orders");
        expect_error "XQDB0003" (fun () ->
            Engine.exec db "INSERT INTO orders VALUES (1)"));
    tc "XQuery front end: coded errors from exec" (fun () ->
        let db = paper_db ~n_orders:4 () in
        expect_error "XPST0003" (fun () -> Engine.exec db "for $i in");
        expect_error "XPST0008" (fun () ->
            Engine.exec db ~vars:[ ("q", item_str "x") ]
              "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[@id = $p]"));
  ]

(* ------------------------------------------------------------------ *)
(* Cursors                                                             *)
(* ------------------------------------------------------------------ *)

let cursors =
  [
    tc "cursor: streams the same elements exec materializes" (fun () ->
        let db = paper_db ~n_orders:12 () in
        let src = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem" in
        let n_exec =
          List.length (Engine.outcome_items (Engine.exec db src))
        in
        let cur = Engine.open_cursor db src in
        let n_cur = Engine.Cursor.fold (fun n _ -> n + 1) 0 cur in
        check Alcotest.int "same cardinality" n_exec n_cur;
        check Alcotest.int "row_count agrees" n_exec
          (Engine.Cursor.row_count cur);
        check Alcotest.bool "drained cursor yields None" true
          (Engine.Cursor.next cur = None);
        Engine.Cursor.close cur;
        Engine.Cursor.close cur (* idempotent *));
    tc "cursor: close stops production" (fun () ->
        let db = paper_db ~n_orders:12 () in
        let cur = Engine.open_cursor db "SELECT ordid FROM orders" in
        check (Alcotest.list Alcotest.string) "columns" [ "ordid" ]
          (Engine.Cursor.columns cur);
        check Alcotest.bool "first pull" true (Engine.Cursor.next cur <> None);
        Engine.Cursor.close cur;
        check Alcotest.bool "closed cursor yields None" true
          (Engine.Cursor.next cur = None);
        check Alcotest.int "only one row produced" 1
          (Engine.Cursor.row_count cur));
    tc "cursor: early close releases the governor budget" (fun () ->
        let db = paper_db ~n_orders:60 () in
        (* the per-node predicate makes the meter charge per document as
           the cursor pulls (a bare path is a handful of eval steps no
           matter the collection size) *)
        let src =
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[.//quantity[. >= 0]]"
        in
        (* find a step budget the full materialization blows *)
        let rec failing_budget b =
          if b < 8 then Alcotest.fail "no failing budget found"
          else begin
            Engine.set_limits db
              { Xdm.Limits.unlimited with max_steps = Some b };
            match Engine.exec db src with
            | _ -> failing_budget (b / 2)
            | exception Xdm.Xerror.Error e when e.code = "XQDB0001" -> b
          end
        in
        let b = failing_budget 1_000_000 in
        (* under the same budget, a cursor that pulls one element and
           closes never does the work that blew the budget above *)
        let cur = Engine.open_cursor db src in
        check Alcotest.bool "first pull fits the budget" true
          (Engine.Cursor.next cur <> None);
        Engine.Cursor.close cur;
        (* the budget still governs a cursor that is drained *)
        let cur2 = Engine.open_cursor db src in
        check Alcotest.bool "draining still trips the governor" true
          (match Engine.Cursor.fold (fun n _ -> n + 1) 0 cur2 with
          | _ -> false
          | exception Xdm.Xerror.Error e -> e.code = "XQDB0001");
        Engine.Cursor.close cur2;
        Engine.set_limits db Xdm.Limits.unlimited;
        ignore b);
  ]

(* ------------------------------------------------------------------ *)
(* Property: prepared-then-executed ≡ direct exec on the paper corpus  *)
(* ------------------------------------------------------------------ *)

(* One shared engine with the paper's schema and indexes: the property
   also exercises cache hits and cross-statement interleaving. *)
let corpus_db =
  lazy
    (let db = paper_db ~n_orders:30 () in
     ignore
       (sql db
          "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
           '//lineitem/@price' AS DOUBLE");
     ignore
       (sql db
          "CREATE INDEX li_pid ON orders(orddoc) USING XMLPATTERN \
           '//lineitem/product/id' AS VARCHAR(20)");
     ignore
       (sql db
          "CREATE INDEX c_custid ON customer(cdoc) USING XMLPATTERN \
           '/customer/id' AS DOUBLE");
     db)

let corpus =
  [|
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>990]";
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>990]";
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \"990\"]";
    "SELECT XMLQuery('$o//lineitem[@price > 990]' passing orddoc as \"o\") \
     FROM orders";
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 990]";
    "SELECT ordid, orddoc FROM orders WHERE XMLExists('$o//lineitem[@price \
     > 990]' passing orddoc as \"o\")";
    "SELECT ordid, orddoc FROM orders WHERE XMLExists('$o//lineitem/@price \
     > 990' passing orddoc as \"o\")";
    "SELECT o.ordid, t.li FROM orders o, XMLTable('$o//lineitem[@price > \
     990]' passing o.orddoc as \"o\" COLUMNS \"li\" XML BY REF PATH '.') as \
     t(li)";
    "SELECT p.name FROM products p, orders o WHERE XMLExists('$o \
     //lineitem/product[id eq $pid]' passing o.orddoc as \"o\", p.id as \
     \"pid\")";
    "SELECT c.cid FROM orders o, customer c WHERE \
     XMLCast(XMLQuery('$o/order/custid' passing o.orddoc as \"o\") as \
     DOUBLE) = XMLCast(XMLQuery('$c/customer/id' passing c.cdoc as \"c\") \
     as DOUBLE)";
    "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') for $i in $d//lineitem[@price \
     > 990] return <result>{$i}</result>";
    "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') let $i := \
     $d//lineitem[@price > 990] return <result>{$i}</result>";
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
     <result>{$o/lineitem[@price > 990]}</result>";
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order let $p := \
     $o/lineitem/@price where $p > 990 return <result>{$o/lineitem}</result>";
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
     $o/lineitem[@price > 990]";
    "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem where \
     $i/product/id = 'p3' return $i/quantity";
    "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') //order[lineitem[@price>100 \
     and @price<200]] return $i";
  |]

let prop_prepared_equiv =
  QCheck.Test.make ~count:60 ~name:"prepared ≡ direct exec ≡ cursor"
    (QCheck.make
       QCheck.Gen.(int_bound (Array.length corpus - 1))
       ~print:(fun i -> corpus.(i)))
    (fun i ->
      let db = Lazy.force corpus_db in
      let src = corpus.(i) in
      let direct = Engine.exec db src in
      let st = Engine.prepare db src in
      let via_prepare = Engine.execute st in
      let cur = Engine.open_cursor db src in
      let n_cursor = Engine.Cursor.fold (fun n _ -> n + 1) 0 cur in
      Engine.Cursor.close cur;
      let n_direct =
        match direct.Engine.payload with
        | Engine.Rows { rows; _ } -> List.length rows
        | Engine.Items items -> List.length items
      in
      if render direct <> render via_prepare then
        QCheck.Test.fail_reportf "prepared result differs on %s" src
      else if n_cursor <> n_direct then
        QCheck.Test.fail_reportf "cursor yields %d of %d on %s" n_cursor
          n_direct src
      else true)

let props = [ QCheck_alcotest.to_alcotest prop_prepared_equiv ]

let suite =
  [
    ("prepare:cache", cache_unit);
    ("prepare:engine", engine_cache);
    ("prepare:stmt", prepared);
    ("prepare:errors", errors);
    ("prepare:cursor", cursors);
    ("prepare:props", props);
  ]
