(** The codified Tips 1–12 advisor: each tip must fire on the paper's
    "bad" query and stay silent on the "good" rewrite. *)

open Helpers

let mk_db () =
  let db = paper_db ~n_orders:10 () in
  ignore
    (sql db
       "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
        '//lineitem/@price' AS DOUBLE");
  ignore
    (sql db
       "CREATE INDEX price_el ON orders(orddoc) USING XMLPATTERN '//price' \
        AS VARCHAR(30)");
  db

let db = lazy (mk_db ())

let tips db src = List.map (fun a -> a.Engine.Advisor.tip) (Engine.advise db src)

let fires t src () =
  let db = Lazy.force db in
  check Alcotest.bool
    (Printf.sprintf "tip %d fires" t)
    true
    (List.mem t (tips db src))

let silent t src () =
  let db = Lazy.force db in
  check Alcotest.bool
    (Printf.sprintf "tip %d silent" t)
    false
    (List.mem t (tips db src))

let advisor_tests =
  [
    tc "Tip 1 fires on cast-less join (Query 4 without casts)"
      (fires 1
         "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order for $j in \
          db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer where $i/custid = \
          $j/id return $i");
    tc "Tip 1 silent with casts (Query 4)"
      (silent 1
         "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order for $j in \
          db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer where \
          $i/custid/xs:double(.) = $j/id/xs:double(.) return $i");
    tc "Tip 2 fires on select-list XMLQuery with predicates (Query 5)"
      (fires 2
         "SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc \
          as \"order\") FROM orders");
    tc "Tip 2 silent when an XMLExists filter exists (Query 10)"
      (silent 2
         "SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc \
          as \"order\") FROM orders WHERE XMLExists('$order \
          //lineitem[@price > 100]' passing orddoc as \"order\")");
    tc "Tip 3 fires on boolean XMLExists (Query 9)"
      (fires 3
         "SELECT ordid FROM orders WHERE XMLExists('$order \
          //lineitem/@price > 100' passing orddoc as \"order\")");
    tc "Tip 3 silent on node-returning XMLExists (Query 8)"
      (silent 3
         "SELECT ordid FROM orders WHERE XMLExists('$order \
          //lineitem[@price > 100]' passing orddoc as \"order\")");
    tc "Tip 4 fires on predicate in COLUMNS PATH (Query 12)"
      (fires 4
         "SELECT o.ordid, t.price FROM orders o, XMLTable('$order \
          //lineitem' passing o.orddoc as \"order\" COLUMNS \"price\" \
          DECIMAL(6,3) PATH '@price[. > 100]') as t(price)");
    tc "Tip 4 silent when predicate is in the row producer (Query 11)"
      (silent 4
         "SELECT o.ordid, t.li FROM orders o, XMLTable('$order \
          //lineitem[@price > 100]' passing o.orddoc as \"order\" COLUMNS \
          \"li\" XML BY REF PATH '.') as t(li)");
    tc "Tip 5 fires on mixed SQL/XML join via XMLCast (Query 14)"
      (fires 5
         "SELECT p.name FROM products p, orders o WHERE p.id = \
          XMLCast(XMLQuery('$order//lineitem/product/id' passing o.orddoc \
          as \"order\") as VARCHAR(13))");
    tc "Tip 6 fires on double-XMLCast join (Query 15)"
      (fires 6
         "SELECT c.cid FROM orders o, customer c WHERE \
          XMLCast(XMLQuery('$order/order/custid' passing o.orddoc as \
          \"order\") as DOUBLE) = XMLCast(XMLQuery('$cust/customer/id' \
          passing c.cdoc as \"cust\") as DOUBLE)");
    tc "Tips 5/6 silent on XQuery-side join (Query 16)"
      (fun () ->
        let db = Lazy.force db in
        let ts =
          tips db
            "SELECT c.cid FROM orders o, customer c WHERE \
             XMLExists('$order/order[custid/xs:double(.) = \
             $cust/customer/id/xs:double(.)]' passing o.orddoc as \
             \"order\", c.cdoc as \"cust\")"
        in
        check Alcotest.bool "silent" false (List.mem 5 ts || List.mem 6 ts));
    tc "Tip 7 fires on constructor-wrapped predicate (Query 19)"
      (fires 7
         "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
          <result>{$ord/lineitem[@price > 100]}</result>");
    tc "Tip 7 silent on bare return path (Query 22)"
      (silent 7
         "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
          $ord/lineitem[@price > 100]");
    tc "Tip 8 fires on absolute path over constructed element (Query 25)"
      (fires 8
         "let $order := <neworder>{db2-fn:xmlcolumn('ORDERS.ORDDOC') \
          /order[custid > 1001]}</neworder> return $order[//customer/name]");
    tc "Tip 9 fires on predicates over a constructed view (Query 26)"
      (fires 9
         "let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
          /order/lineitem return <item><pid>{$i/product/id/data(.)}</pid>\
          </item> for $j in $view where $j/pid = '17' return $j");
    tc "Tip 9 silent on the base-collection rewrite (Query 27)"
      (silent 9
         "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem where \
          $i/product/id/data(.) = '17' return $i/product");
    tc "Tip 11 fires on /text() misalignment (Query 29)"
      (fun () ->
        let db = Lazy.force db in
        let ts =
          tips db
            "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
             /order[lineitem/price/text() = \"99.50\"] return $ord"
        in
        check Alcotest.bool "tip 11" true (List.mem 11 ts));
    tc "Tip 10 fires on namespace-only mismatch" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE customer (cid integer, cdoc XML)");
        ignore
          (sql db
             "CREATE INDEX c_nation ON customer(cdoc) USING XMLPATTERN \
              '//nation' AS DOUBLE");
        let ts =
          List.map
            (fun a -> a.Engine.Advisor.tip)
            (Engine.advise db
               "declare namespace c=\"http://ournamespaces.com/customer\"; \
                db2-fn:xmlcolumn('CUSTOMER.CDOC')/c:customer[c:nation = 1]")
        in
        check Alcotest.bool "tip 10" true (List.mem 10 ts));
    tc "Tip 12 fires when only a //* index exists for an attribute \
        predicate" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE orders (ordid integer, orddoc XML)");
        ignore
          (sql db
             "CREATE INDEX broad ON orders(orddoc) USING XMLPATTERN '//*' \
              AS VARCHAR(50)");
        let ts =
          List.map
            (fun a -> a.Engine.Advisor.tip)
            (Engine.advise db
               "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \
                \"100\"]")
        in
        check Alcotest.bool "tip 12" true (List.mem 12 ts));
    tc "Section 3.10 advice fires on unmergeable between"
      (fires 13
         "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/price > 100 \
          and lineitem/price < 200]");
    tc "Section 3.10 advice silent on attribute between (Query 30)"
      (silent 13
         "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem[@price > 100 \
          and @price < 200]]");
    tc "clean query gets no advice" (fun () ->
        let db = Lazy.force db in
        check Alcotest.(list int) "none" []
          (tips db
             "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100]"));
  ]

let suite = [ ("advisor:tips", advisor_tests) ]
