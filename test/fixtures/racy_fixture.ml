(* Deliberately racy module: the committed seed fixture for the Xsan
   lint tests. This directory has no dune file, so the module is never
   compiled — t_xsan feeds its source to Srccheck and asserts every
   diagnostic class fires (XSAN001..005). Do not "fix" this file. *)

let hits = ref 0
let cache : (string, int) Hashtbl.t = Hashtbl.create 16
let crc_table = lazy (Array.init 256 (fun i -> (i * 7) land 0xff))
let guard = Mutex.create ()

let lookup k =
  incr hits;
  match Hashtbl.find_opt cache k with
  | Some v -> v
  | None ->
      let v = Random.int 1000 in
      Mutex.lock guard;
      Hashtbl.replace cache k v;
      Mutex.unlock guard;
      ignore (Lazy.force crc_table);
      v
