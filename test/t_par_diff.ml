(** Differential parallel ≡ sequential harness (the Xpar determinism
    contract).

    Every statement of the paper corpus — plus error-raising robustness
    statements and parameterized prepared statements — is executed at
    parallelism 1, 2 and 4 on the same engine, and the three runs must be
    byte-identical: same serialized payload, same [indexes_used], same
    error code when the statement fails. A qcheck property then drives
    random queries through random chunk sizes, and dedicated tests pin
    the non-result guarantees: the domain pool returns to idle after an
    early cursor close, the governor's [XQDB0001] still fires when the
    budget is charged across domains, and an injected fault inside a
    parallel chunk still rolls the whole statement back.

    On OCaml 4.x builds Xpar is the sequential fallback: every level
    runs the same chunked code single-threaded, so this file doubles as
    a determinism test of the chunk/merge machinery itself. *)

open Helpers
module SV = Storage.Sql_value

let levels = [ 1; 2; 4 ]

(* The paper database with the paper's four indexes (as in t_paper). *)
let mk_db () =
  let db = paper_db ~n_orders:80 () in
  List.iter
    (fun ddl -> ignore (sql db ddl))
    [
      "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS DOUBLE";
      "CREATE INDEX o_custid ON orders(orddoc) USING XMLPATTERN '//custid' \
       AS DOUBLE";
      "CREATE INDEX c_custid ON customer(cdoc) USING XMLPATTERN \
       '/customer/id' AS DOUBLE";
      "CREATE INDEX li_pid ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/product/id' AS VARCHAR(20)";
    ];
  db

let shared_db = lazy (mk_db ())

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let render (o : Engine.outcome) : string =
  match o.Engine.payload with
  | Engine.Items items -> Engine.to_xml items
  | Engine.Rows { cols; rows } ->
      String.concat "|" cols ^ "\n"
      ^ String.concat "\n"
          (List.map
             (fun r -> String.concat "|" (List.map SV.to_display r))
             rows)

(** One run of a statement, as a comparable string: payload and the
    indexes the plan used on success, the stable error code on failure.
    [outcome.diagnostics] is deliberately NOT compared — it records
    plan-cache hits/misses, which legitimately differ between the first
    and later runs of the same text. *)
let snapshot ?params ?vars db (src : string) : string =
  match Engine.exec ?params ?vars db src with
  | o ->
      Printf.sprintf "OK used=[%s]\n%s"
        (String.concat ";" o.Engine.indexes_used)
        (render o)
  | exception Xdm.Xerror.Error { code; _ } -> "ERROR " ^ code

let snapshot_at ?params ?vars db p src =
  Engine.set_parallelism db p;
  Fun.protect
    ~finally:(fun () -> Engine.set_parallelism db 1)
    (fun () -> snapshot ?params ?vars db src)

(** Run [src] at every parallelism level and require identical
    snapshots. *)
let assert_diff ?params ?vars db (id : string) (src : string) =
  let base = snapshot_at ?params ?vars db 1 src in
  List.iter
    (fun p ->
      check Alcotest.string
        (Printf.sprintf "%s: parallelism %d ≡ 1" id p)
        base
        (snapshot_at ?params ?vars db p src))
    (List.filter (fun p -> p <> 1) levels)

(* ------------------------------------------------------------------ *)
(* The statement corpus (paper Queries 1–30 where timing-meaningful,    *)
(* both front ends, plus robustness statements)                         *)
(* ------------------------------------------------------------------ *)

let corpus : (string * string) list =
  [
    ( "Q1",
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>100] \
       return $i" );
    ( "Q2",
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>100] \
       return $i" );
    ( "Q3",
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \
       \"100\" ] return $i" );
    ( "Q4",
      "for $i in db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")/order for $j in \
       db2-fn:xmlcolumn(\"CUSTOMER.CDOC\")/customer where \
       $i/custid/xs:double(.) = $j/id/xs:double(.) return $i/@id/data(.)" );
    ( "Q5",
      "SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc as \
       \"order\") FROM orders" );
    ( "Q6",
      "VALUES (XMLQuery('db2-fn:xmlcolumn(\"ORDERS.ORDDOC\") \
       //lineitem[@price > 100] '))" );
    ("Q7", "db2-fn:xmlcolumn('ORDERS.ORDDOC')// lineitem[@price > 100]");
    ( "Q8",
      "SELECT ordid, orddoc FROM orders WHERE \
       XMLExists('$order//lineitem[@price > 100]' passing orddoc as \
       \"order\")" );
    ( "Q9",
      "SELECT ordid, orddoc FROM orders WHERE \
       XMLExists('$order//lineitem/@price > 100' passing orddoc as \
       \"order\")" );
    ( "Q10",
      "SELECT ordid, XMLQuery('$order//lineitem[@price > 100]' passing \
       orddoc as \"order\") FROM orders WHERE \
       XMLExists('$order//lineitem[@price > 100]' passing orddoc as \
       \"order\")" );
    ( "Q11",
      "SELECT o.ordid, t.lineitem FROM orders o, XMLTable('$order \
       //lineitem[@price > 100]' passing o.orddoc as \"order\" COLUMNS \
       \"lineitem\" XML BY REF PATH '.') as t(lineitem)" );
    ( "Q12",
      "SELECT o.ordid, t.lineitem, t.price FROM orders o, \
       XMLTable('$order//lineitem' passing o.orddoc as \"order\" COLUMNS \
       \"lineitem\" XML BY REF PATH '.', \"price\" DECIMAL(6,3) PATH \
       '@price[. > 100]') as t(lineitem, price)" );
    ( "Q13",
      "SELECT p.name, XMLQuery('$order//lineitem' passing orddoc as \
       \"order\") FROM products p, orders o WHERE XMLExists('$order \
       //lineitem/product[id eq $pid]' passing o.orddoc as \"order\", p.id \
       as \"pid\")" );
    (* Q14: the paper's XMLCast-of-many failure — must fail with the same
       code at every level *)
    ( "Q14",
      "SELECT p.name FROM products p, orders o WHERE p.id = \
       XMLCast(XMLQuery('$order//lineitem/product/id' passing o.orddoc as \
       \"order\") as VARCHAR(13))" );
    ( "Q15",
      "SELECT c.cid FROM orders o, customer c WHERE \
       XMLCast(XMLQuery('$order/order/custid' passing o.orddoc as \
       \"order\") as DOUBLE) = XMLCast(XMLQuery('$cust/customer/id' \
       passing c.cdoc as \"cust\") as DOUBLE)" );
    ( "Q16",
      "SELECT c.cid FROM orders o, customer c WHERE \
       XMLExists('$order/order[custid/xs:double(.) = \
       $cust/customer/id/xs:double(.)]' passing o.orddoc as \"order\", \
       c.cdoc as \"cust\")" );
    ( "Q17",
      "for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') for $item in \
       $doc//lineitem[@price > 100] return <result>{$item}</result>" );
    ( "Q18",
      "for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') let $item := \
       $doc//lineitem[@price > 100] return <result>{$item}</result>" );
    ( "Q19",
      "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
       <result>{$ord/lineitem[@price > 100]}</result>" );
    ( "Q20",
      "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order where \
       $ord/lineitem/@price > 100 return <result>{$ord/lineitem}</result>" );
    ( "Q21",
      "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order let $price := \
       $ord/lineitem/@price where $price > 100 return \
       <result>{$ord/lineitem}</result>" );
    ( "Q22",
      "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
       $ord/lineitem[@price > 100]" );
    ( "Q26",
      "let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
       /order/lineitem return <item quantity=\"{$i/quantity}\"> \
       <pid>{$i/product/id/data(.)}</pid></item> for $j in $view where \
       $j/pid = 'p3' return $j" );
    ( "Q27",
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem where \
       $i/product/id = 'p3' return $i/quantity" );
    ( "Q30",
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
       //order[lineitem[@price>100 and @price<200]] return $i" );
    ( "3.10-between",
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/price > 100 and \
       lineitem/price < 200]" );
    ( "count",
      "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>100])"
    );
    (* robustness: statements that fail must fail identically *)
    ("err-collection", "db2-fn:xmlcolumn('NOPE.NOPE')//order");
    ("err-cast", "xs:double(\"not-a-number\")");
    ("err-unknown-table", "SELECT x FROM no_such_table");
  ]

let corpus_tests =
  [
    tc "paper + robustness corpus at parallelism 1/2/4" (fun () ->
        let db = Lazy.force shared_db in
        Engine.set_limits db Xdm.Limits.unlimited;
        List.iter (fun (id, src) -> assert_diff db id src) corpus);
    tc "Query 28 (namespaces) at parallelism 1/2/4" (fun () ->
        let dbn = Engine.create () in
        ignore (sql dbn "CREATE TABLE orders (ordid integer, orddoc XML)");
        ignore (sql dbn "CREATE TABLE customer (cid integer, cdoc XML)");
        let p =
          {
            Workload.Orders_gen.default with
            n_customers = 10;
            n_products = 10;
            namespace = Some "http://ournamespaces.com/order";
          }
        in
        Engine.load_documents dbn ~table:"orders" ~column:"orddoc"
          (Workload.Orders_gen.orders p 30);
        Engine.load_documents dbn ~table:"customer" ~column:"cdoc"
          (Workload.Orders_gen.customers
             { p with namespace = Some "http://ournamespaces.com/customer" });
        ignore
          (sql dbn
             "CREATE INDEX c_nation_ns2 ON customer(cdoc) USING XMLPATTERN \
              '//*:nation' AS DOUBLE");
        ignore
          (sql dbn
             "CREATE INDEX li_price_ns ON orders(orddoc) USING XMLPATTERN \
              '//@price' AS DOUBLE");
        assert_diff dbn "Q28"
          "declare default element namespace \
           \"http://ournamespaces.com/order\"; declare namespace \
           c=\"http://ournamespaces.com/customer\"; for $ord in \
           db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")/order[lineitem/@price > 600] \
           for $cust in \
           db2-fn:xmlcolumn(\"CUSTOMER.CDOC\")/c:customer[c:nation = 1] \
           where $ord/custid/xs:double(.) = $cust/c:id/xs:double(.) return \
           $ord");
    tc "Query 29 (/text() misalignment) at parallelism 1/2/4" (fun () ->
        let dbt = Engine.create () in
        ignore (sql dbt "CREATE TABLE orders (ordid integer, orddoc XML)");
        Engine.load_documents dbt ~table:"orders" ~column:"orddoc"
          [
            Workload.Orders_gen.usd_price_doc;
            "<order><lineitem><price>99.50</price></lineitem></order>";
          ];
        ignore
          (sql dbt
             "CREATE INDEX price_t ON orders(orddoc) USING XMLPATTERN \
              '//price/text()' AS VARCHAR(30)");
        assert_diff dbt "Q29"
          "for $ord in db2-fn:xmlcolumn(\"ORDERS.ORDDOC\") \
           /order[lineitem/price/text() = \"99.50\"] return $ord");
    tc "prepared statements at parallelism 1/2/4" (fun () ->
        let db = Lazy.force shared_db in
        (* XQuery free variable becomes a named parameter slot *)
        assert_diff db "prep-xq"
          ~vars:[ ("p", [ Xdm.Item.A (Xdm.Atomic.Double 100.) ]) ]
          "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
           //order[lineitem/@price>$p] return $i";
        (* SQL positional parameter *)
        assert_diff db "prep-sql"
          ~params:[ SV.Int 40L ]
          "SELECT ordid FROM orders WHERE ordid < ? AND \
           XMLExists('$order//lineitem[@price > 100]' passing orddoc as \
           \"order\")";
        (* and via the explicit prepare/execute surface *)
        let st =
          Engine.prepare db
            "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
             //lineitem[@price > $p] return $i"
        in
        let run p =
          Engine.set_parallelism db p;
          Fun.protect
            ~finally:(fun () -> Engine.set_parallelism db 1)
            (fun () ->
              render
                (Engine.execute
                   ~vars:[ ("p", [ Xdm.Item.A (Xdm.Atomic.Double 500.) ]) ]
                   st))
        in
        let base = run 1 in
        List.iter
          (fun p ->
            check Alcotest.string
              (Printf.sprintf "prepared execute: parallelism %d ≡ 1" p)
              base (run p))
          [ 2; 4 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Property: random queries × random chunk sizes                        *)
(* ------------------------------------------------------------------ *)

let templates =
  [|
    (fun thr _ ->
      Printf.sprintf
        "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>%d] \
         return $i"
        thr);
    (fun thr _ ->
      Printf.sprintf "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > %d]"
        thr);
    (fun thr _ ->
      Printf.sprintf
        "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') for $i in \
         $d//lineitem[@price > %d] return <r>{$i}</r>"
        thr);
    (fun thr _ ->
      Printf.sprintf
        "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order where \
         $o/lineitem/@price > %d return $o/@id/data(.)"
        thr);
    (fun thr hi ->
      Printf.sprintf
        "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem[@price>%d \
         and @price<%d]])"
        thr (thr + hi));
  |]

let gen_case =
  QCheck.Gen.(
    let* tmpl = int_bound (Array.length templates - 1) in
    let* thr = int_bound 1000 in
    let* hi = int_range 1 300 in
    let* par = int_range 2 4 in
    let* chunk = int_range 1 9 in
    return (tmpl, thr, hi, par, chunk))

let arb_case =
  QCheck.make gen_case ~print:(fun (tmpl, thr, hi, par, chunk) ->
      Printf.sprintf "query=%s parallelism=%d chunk_size=%d"
        (templates.(tmpl) thr hi)
        par chunk)

(** The pool parks asynchronously after the coordinator returns: a worker
    may still be between finishing its last chunk and decrementing the
    busy count. Bounded wait. *)
let wait_idle () =
  let rec go n =
    if Xpar.idle () then true
    else if n = 0 then false
    else begin
      Unix.sleepf 0.002;
      go (n - 1)
    end
  in
  go 500

let prop_par_equiv_seq =
  QCheck.Test.make ~count:40 ~name:"random query × chunk size: parallel ≡ sequential"
    arb_case
    (fun (tmpl, thr, hi, par, chunk) ->
      let db = Lazy.force shared_db in
      let cat = Engine.catalog db in
      let c = Planner.compile (templates.(tmpl) thr hi) in
      let seq_items, seq_plan = Planner.execute_compiled cat c in
      let par_items, par_plan =
        Planner.execute_compiled ~parallelism:par ~chunk_size:chunk cat c
      in
      let s = Xmlparse.Xml_writer.seq_to_string in
      s seq_items = s par_items
      && seq_plan.Planner.indexes_used = par_plan.Planner.indexes_used
      (* after every region the pool must return to idle *)
      && wait_idle ())

(* ------------------------------------------------------------------ *)
(* Pool hygiene, governor, fault injection                              *)
(* ------------------------------------------------------------------ *)

let guarantee_tests =
  [
    tc "early cursor close at parallelism 4 leaves the pool idle" (fun () ->
        let db = Lazy.force shared_db in
        Engine.set_parallelism db 4;
        Fun.protect
          ~finally:(fun () -> Engine.set_parallelism db 1)
          (fun () ->
            (* spin the pool up with a genuinely parallel statement *)
            ignore
              (Engine.exec db
                 "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>900]");
            let cur =
              Engine.open_cursor db
                "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem"
            in
            ignore (Engine.Cursor.next cur);
            ignore (Engine.Cursor.next cur);
            Engine.Cursor.close cur;
            check Alcotest.bool "pool idle after early close" true
              (wait_idle ());
            check Alcotest.bool "pool never exceeds target workers" true
              (Xpar.pool_size () <= 3)));
    tc "XQDB0001 fires under parallelism (budget charged atomically)"
      (fun () ->
        let db = paper_db ~n_orders:40 () in
        Engine.set_parallelism db 4;
        Engine.set_limits db
          { Xdm.Limits.unlimited with Xdm.Limits.max_steps = Some 50 };
        expect_error "XQDB0001" (fun () ->
            Engine.exec db
              "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
               //order[lineitem/@*>100] return $i");
        Engine.set_limits db Xdm.Limits.unlimited;
        (* with the budget lifted the same statement succeeds *)
        ignore
          (Engine.exec db
             "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
              //order[lineitem/@*>100] return $i"));
    tc "storage.insert fault inside a parallel load rolls back" (fun () ->
        Fun.protect ~finally:Faultinject.reset (fun () ->
            let db = Engine.create () in
            ignore (sql db "CREATE TABLE t (id integer, doc XML)");
            ignore
              (sql db
                 "CREATE INDEX ti ON t(doc) USING XMLPATTERN '//@price' AS \
                  DOUBLE");
            let table () =
              Storage.Database.table_exn (Engine.database db) "t"
            in
            let docs =
              Workload.Orders_gen.orders Workload.Orders_gen.default 40
            in
            Engine.set_parallelism db 4;
            Faultinject.arm ~point:"storage.insert" ~n:17;
            (match Engine.load_documents db ~table:"t" ~column:"doc" docs with
            | () -> Alcotest.fail "expected an injected fault"
            | exception Faultinject.Injected { point; _ } ->
                check Alcotest.string "fault point" "storage.insert" point);
            check Alcotest.int "rows rolled back" 0
              (Storage.Table.row_count (table ()));
            List.iter
              (fun (iname, diffs) ->
                check
                  Alcotest.(list string)
                  (iname ^ " consistent after rollback")
                  [] diffs)
              (Engine.check_consistency db);
            (* disarmed (the trigger is one-shot): the same load succeeds *)
            Engine.load_documents db ~table:"t" ~column:"doc" docs;
            check Alcotest.int "all docs loaded after retry" 40
              (Storage.Table.row_count (table ()))));
    tc "index.insert_doc fault inside a parallel index build rolls back"
      (fun () ->
        Fun.protect ~finally:Faultinject.reset (fun () ->
            let db = Engine.create () in
            ignore (sql db "CREATE TABLE t (id integer, doc XML)");
            Engine.load_documents db ~table:"t" ~column:"doc"
              (Workload.Orders_gen.orders Workload.Orders_gen.default 40);
            let rows0 =
              Storage.Table.row_count
                (Storage.Database.table_exn (Engine.database db) "t")
            in
            Engine.set_parallelism db 4;
            Faultinject.arm ~point:"index.insert_doc" ~n:20;
            (match
               sql db
                 "CREATE INDEX ti ON t(doc) USING XMLPATTERN '//@price' AS \
                  DOUBLE"
             with
            | _ -> Alcotest.fail "expected an injected fault"
            | exception Faultinject.Injected { point; _ } ->
                check Alcotest.string "fault point" "index.insert_doc" point);
            check Alcotest.int "index creation rolled back" 0
              (List.length (Engine.xml_indexes db));
            check Alcotest.int "rows untouched" rows0
              (Storage.Table.row_count
                 (Storage.Database.table_exn (Engine.database db) "t"));
            List.iter
              (fun (iname, diffs) ->
                check
                  Alcotest.(list string)
                  (iname ^ " consistent after rollback")
                  [] diffs)
              (Engine.check_consistency db);
            (* retry succeeds and the index is complete *)
            ignore
              (sql db
                 "CREATE INDEX ti ON t(doc) USING XMLPATTERN '//@price' AS \
                  DOUBLE");
            check Alcotest.int "index created on retry" 1
              (List.length (Engine.xml_indexes db));
            List.iter
              (fun (iname, diffs) ->
                check
                  Alcotest.(list string)
                  (iname ^ " consistent after retry")
                  [] diffs)
              (Engine.check_consistency db)));
  ]

let suite =
  [
    ("par_diff:corpus", corpus_tests);
    ( "par_diff:props",
      [ QCheck_alcotest.to_alcotest prop_par_equiv_seq ] @ guarantee_tests );
  ]
