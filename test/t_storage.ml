(** Storage layer: SQL values, tables, path tables, schema validation. *)

open Helpers
module SV = Storage.Sql_value

let sql_value_tests =
  [
    tc "SQL string comparison ignores trailing blanks (3.3/3.6)" (fun () ->
        check Alcotest.(option int) "eq" (Some 0)
          (SV.compare_sql (SV.Varchar "abc  ") (SV.Varchar "abc")));
    tc "SQL string comparison respects leading blanks" (fun () ->
        check Alcotest.bool "neq" true
          (SV.compare_sql (SV.Varchar " abc") (SV.Varchar "abc") <> Some 0));
    tc "NULL comparisons are unknown" (fun () ->
        check Alcotest.(option int) "unknown" None
          (SV.compare_sql SV.Null (SV.Int 1L)));
    tc "numeric promotion int/double" (fun () ->
        check Alcotest.(option int) "eq" (Some 0)
          (SV.compare_sql (SV.Int 2L) (SV.Double 2.)));
    tc "type mismatch raises" (fun () ->
        match SV.compare_sql (SV.Varchar "1") (SV.Int 1L) with
        | _ -> Alcotest.fail "should raise"
        | exception SV.Incomparable _ -> ());
    tc "VARCHAR(n) coercion rejects long values" (fun () ->
        match SV.coerce (SV.TVarchar 3) (SV.Varchar "toolong") with
        | _ -> Alcotest.fail "should fail"
        | exception Xdm.Xerror.Error { code = "XQDB0003"; _ } -> ());
    tc "XML column accepts string documents" (fun () ->
        match SV.coerce SV.TXml (SV.Varchar "<a/>") with
        | SV.Xml [ Xdm.Item.N _ ] -> ()
        | _ -> Alcotest.fail "expected parsed doc");
    tc "to_xdm types scalar passing values (Query 13's $pid)" (fun () ->
        match SV.to_xdm (SV.Varchar "p1") with
        | [ Xdm.Item.A (Xdm.Atomic.Str "p1") ] -> ()
        | _ -> Alcotest.fail "expected xs:string");
  ]

let table_tests =
  [
    tc "insert assigns stable row ids" (fun () ->
        let t =
          Storage.Table.create "t"
            [ { Storage.Table.col_name = "a"; col_type = SV.TInt } ]
        in
        let r0 = Storage.Table.insert t [ SV.Int 1L ] in
        let r1 = Storage.Table.insert t [ SV.Int 2L ] in
        check Alcotest.bool "distinct" true (r0 <> r1);
        ignore (Storage.Table.delete t r0);
        let r2 = Storage.Table.insert t [ SV.Int 3L ] in
        check Alcotest.bool "no reuse" true (r2 <> r0 && r2 <> r1));
    tc "hooks fire on insert and delete" (fun () ->
        let t =
          Storage.Table.create "t"
            [ { Storage.Table.col_name = "a"; col_type = SV.TInt } ]
        in
        let ins = ref 0 and del = ref 0 in
        Storage.Table.add_hook t
          { on_insert = (fun _ -> incr ins); on_delete = (fun _ -> incr del) };
        let r = Storage.Table.insert t [ SV.Int 1L ] in
        ignore (Storage.Table.delete t r);
        check Alcotest.(pair int int) "fired" (1, 1) (!ins, !del));
    tc "path table interns distinct rooted paths" (fun () ->
        let t =
          Storage.Table.create "t"
            [ { Storage.Table.col_name = "d"; col_type = SV.TXml } ]
        in
        ignore
          (Storage.Table.insert t
             [ SV.Varchar "<o><li p=\"1\"/><li p=\"2\"/></o>" ]);
        let pt = Storage.Table.path_table_exn t "d" in
        (* /o, /o/li, /o/li/@p *)
        check Alcotest.int "3 paths" 3 (Storage.Path_table.cardinality pt));
    tc "xml_docs returns (row, doc) in insertion order" (fun () ->
        let t =
          Storage.Table.create "t"
            [ { Storage.Table.col_name = "d"; col_type = SV.TXml } ]
        in
        ignore (Storage.Table.insert t [ SV.Varchar "<a/>" ]);
        ignore (Storage.Table.insert t [ SV.Varchar "<b/>" ]);
        let docs = Storage.Table.xml_docs t "d" in
        check Alcotest.(list int) "rows" [ 0; 1 ] (List.map fst docs));
    tc "database resolver restricts rows (Definition 1 plumbing)" (fun () ->
        let db = Storage.Database.create () in
        let t =
          Storage.Database.create_table db "t"
            [ { Storage.Table.col_name = "d"; col_type = SV.TXml } ]
        in
        ignore (Storage.Table.insert t [ SV.Varchar "<a/>" ]);
        ignore (Storage.Table.insert t [ SV.Varchar "<b/>" ]);
        let all = Storage.Database.resolver db "T.D" in
        check Alcotest.int "all" 2 (List.length all);
        let restricted =
          Storage.Database.resolver
            ~restrict_to:[ ("t.d", Xdm.Int_set.singleton 1) ]
            db "T.D"
        in
        check Alcotest.int "one" 1 (List.length restricted));
  ]

let schema_tests =
  [
    tc "validation annotates matching nodes" (fun () ->
        let s = Xschema.make "s" [ ("//price", Xdm.Atomic.TDouble) ] in
        let d = parse_doc "<o><price>9.5</price></o>" in
        check Alcotest.int "annotated" 1 (Xschema.validate s d);
        let p = List.hd (List.hd d.Xdm.Node.children).Xdm.Node.children in
        match Xdm.Node.typed_value p with
        | [ Xdm.Atomic.Double 9.5 ] -> ()
        | _ -> Alcotest.fail "expected typed double");
    tc "validated value comparison works with gt (3.10)" (fun () ->
        let s = Xschema.make "s" [ ("//price", Xdm.Atomic.TDouble) ] in
        let d = parse_doc "<li><price>150</price></li>" in
        ignore (Xschema.validate s d);
        let resolver _ = [ Xdm.Item.N d ] in
        let r =
          Xquery.Eval.run_string ~resolver
            "count(db2-fn:xmlcolumn('X.Y')/li[price gt 100 and price lt 200])"
        in
        check Alcotest.string "typed gt" "1"
          (Xmlparse.Xml_writer.seq_to_string r));
    tc "validation rejects non-conforming values (postal codes, 2.1)"
      (fun () ->
        let s = Xschema.make "v1" [ ("//postalcode", Xdm.Atomic.TDouble) ] in
        let us = parse_doc "<a><postalcode>95120</postalcode></a>" in
        check Alcotest.bool "US ok" true (Result.is_ok (Xschema.validate_opt s us));
        let ca = parse_doc "<a><postalcode>K1A 0B1</postalcode></a>" in
        check Alcotest.bool "Canadian rejected" true
          (Result.is_error (Xschema.validate_opt s ca)));
    tc "xsi:type overrides schema rules" (fun () ->
        let s = Xschema.make "s" [] in
        let d =
          parse_doc
            "<o xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\">\
             <v xsi:type=\"xs:integer\">42</v></o>"
        in
        ignore (Xschema.validate s d);
        let v = List.hd (List.hd d.Xdm.Node.children).Xdm.Node.children in
        match Xdm.Node.typed_value v with
        | [ Xdm.Atomic.Integer 42L ] -> ()
        | _ -> Alcotest.fail "expected integer 42");
    tc "per-document schemas: same column, different types (2.1)" (fun () ->
        let v1 = Xschema.make "v1" [ ("//code", Xdm.Atomic.TDouble) ] in
        let v2 = Xschema.make "v2" [ ("//code", Xdm.Atomic.TString) ] in
        let d1 = parse_doc "<a><code>95120</code></a>" in
        let d2 = parse_doc "<a><code>K1A 0B1</code></a>" in
        ignore (Xschema.validate v1 d1);
        ignore (Xschema.validate v2 d2);
        let ty n =
          match (List.hd (List.hd n.Xdm.Node.children).Xdm.Node.children).Xdm.Node.ann with
          | Xdm.Node.SimpleType t -> Xdm.Atomic.type_name t
          | Xdm.Node.Untyped -> "untyped"
        in
        check Alcotest.string "d1 double" "xs:double" (ty d1);
        check Alcotest.string "d2 string" "xs:string" (ty d2));
  ]

let suite =
  [
    ("storage:sql_values", sql_value_tests);
    ("storage:tables", table_tests);
    ("storage:schema", schema_tests);
  ]
