(** Tests for the Xprof profiling & metrics layer: histogram percentiles,
    the registry, per-statement counter reset, the zero-overhead disabled
    path, the paper's eligible/ineligible probe-vs-scan contrast, governor
    headroom, and the invariant that profiling never changes results. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Hist / Registry / Json units                                        *)
(* ------------------------------------------------------------------ *)

let t_hist_percentiles () =
  let h = Xprof.Hist.create () in
  check Alcotest.bool "empty percentile is nan" true
    (Float.is_nan (Xprof.Hist.p50 h));
  for i = 1 to 100 do
    Xprof.Hist.add h (float_of_int i)
  done;
  check Alcotest.int "count" 100 (Xprof.Hist.count h);
  check (Alcotest.float 1e-9) "p50" 50. (Xprof.Hist.p50 h);
  check (Alcotest.float 1e-9) "p95" 95. (Xprof.Hist.p95 h);
  check (Alcotest.float 1e-9) "p99" 99. (Xprof.Hist.p99 h);
  check (Alcotest.float 1e-9) "mean" 50.5 (Xprof.Hist.mean h);
  check (Alcotest.float 1e-9) "max" 100. (Xprof.Hist.max_value h);
  Xprof.Hist.clear h;
  check Alcotest.int "cleared" 0 (Xprof.Hist.count h)

let expect_invalid_arg f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let t_registry () =
  let r = Xprof.Registry.create () in
  Xprof.Registry.incr r "a";
  Xprof.Registry.incr ~by:4 r "a";
  check Alcotest.int "counter" 5 !(Xprof.Registry.counter r "a");
  expect_invalid_arg (fun () -> Xprof.Registry.incr ~by:(-1) r "a");
  Xprof.Registry.set_gauge r "g" 2.5;
  check (Alcotest.float 1e-9) "gauge" 2.5 !(Xprof.Registry.gauge r "g");
  Xprof.Registry.observe r "h" 1.;
  Xprof.Registry.observe r "h" 3.;
  check Alcotest.int "hist n" 2 (Xprof.Hist.count (Xprof.Registry.hist r "h"));
  (* a name registered as one kind cannot be reused as another *)
  expect_invalid_arg (fun () -> Xprof.Registry.set_gauge r "a" 1.);
  let js = Xprof.Json.to_string (Xprof.Registry.to_json r) in
  check Alcotest.bool "json has counter" true (contains_sub ~affix:"\"a\":5" js)

let t_json () =
  let open Xprof.Json in
  check Alcotest.string "escape"
    "{\"s\":\"a\\\"b\\nc\",\"i\":-3,\"f\":1.5,\"nan\":null,\"arr\":[true,null]}"
    (to_string
       (Obj
          [
            ("s", Str "a\"b\nc");
            ("i", Int (-3));
            ("f", Float 1.5);
            ("nan", Float Float.nan);
            ("arr", Arr [ Bool true; Null ]);
          ]))

(* ------------------------------------------------------------------ *)
(* Engine-level profiling                                              *)
(* ------------------------------------------------------------------ *)

let idx_db ?(n_orders = 60) () =
  let db = paper_db ~n_orders () in
  List.iter
    (fun s -> ignore (sql db s))
    [
      "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS DOUBLE";
      "CREATE INDEX li_pid ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/product/id' AS VARCHAR(20)";
      "CREATE INDEX c_custid ON customer(cdoc) USING XMLPATTERN \
       '/customer/id' AS DOUBLE";
    ];
  db

let counters_of db run =
  Engine.set_profiling db true;
  ignore (run ());
  let c = Xprof.counters (Engine.profile db) in
  Engine.set_profiling db false;
  c

let c_assoc name c = List.assoc name c

let xq_run db src () = List.length (fst (xquery db src))
let sql_run db src () = List.length (sql db src).Sqlxml.Sql_exec.rrows

let q1 = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>990]"
let q2 = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>990]"

(** With profiling off (the default), nothing is ever charged: all
    counters stay zero and the operator tree stays empty. *)
let t_disabled_zero_overhead () =
  let db = idx_db () in
  check Alcotest.bool "off by default" false (Engine.profiling db);
  ignore (xquery db q1);
  ignore (sql db "SELECT ordid FROM orders");
  let p = Engine.profile db in
  List.iter
    (fun (name, v) -> check Alcotest.int ("counter " ^ name) 0 v)
    (Xprof.counters p);
  check Alcotest.int "no operators" 0 (List.length p.Xprof.root.Xprof.op_children);
  check Alcotest.bool "no governor snapshot" true (p.Xprof.governor = [])

(** Counters are reset at every statement start: running the same query
    twice yields identical (not accumulated) counters, and a cheap query
    after an expensive one does not inherit its charges. *)
let t_reset_between_statements () =
  let db = idx_db () in
  let first = counters_of db (xq_run db q2) in
  let again = counters_of db (xq_run db q2) in
  List.iter
    (fun (name, v) ->
      check Alcotest.int ("stable " ^ name) v (c_assoc name again))
    first;
  check Alcotest.int "scan sees every doc" 60 (c_assoc "docs_scanned" first);
  let eligible = counters_of db (xq_run db q1) in
  check Alcotest.bool "eligible run not polluted by prior scan" true
    (c_assoc "docs_scanned" eligible < 60)

(** The paper's Definition 1 contrast, asserted over profiled counters:
    for each eligible/ineligible twin, the eligible query's index probes
    are strictly fewer than the documents its ineligible twin scans. *)
let t_eligible_pairs () =
  let db = idx_db () in
  let pairs =
    [
      ( "Q1/Q2",
        xq_run db q1,
        xq_run db q2 );
      ( "Q8/Q9",
        sql_run db
          "SELECT ordid FROM orders WHERE XMLExists('$o//lineitem[@price > \
           990]' passing orddoc as \"o\")",
        sql_run db
          "SELECT ordid FROM orders WHERE XMLExists('$o//lineitem/@price > \
           990' passing orddoc as \"o\")" );
      ( "Q17/Q18",
        xq_run db
          "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') for $i in \
           $d//lineitem[@price > 990] return <result>{$i}</result>",
        xq_run db
          "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') let $i := \
           $d//lineitem[@price > 990] return <result>{$i}</result>" );
      ( "Q22/Q19",
        xq_run db
          "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
           $o/lineitem[@price > 990]",
        xq_run db
          "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
           <result>{$o/lineitem[@price > 990]}</result>" );
      ( "Q27/Q26",
        xq_run db
          "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem \
           where $i/product/id = 'p3' return $i/quantity",
        xq_run db
          "let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
           /order/lineitem return <item quantity=\"{$i/quantity}\"> \
           <pid>{$i/product/id/data(.)}</pid></item> for $j in $view \
           where $j/pid = 'p3' return $j" );
    ]
  in
  List.iter
    (fun (name, elig, inelig) ->
      let probes = c_assoc "index_probes" (counters_of db elig) in
      let docs = c_assoc "docs_scanned" (counters_of db inelig) in
      check Alcotest.bool (name ^ ": eligible twin probes an index") true
        (probes > 0);
      check Alcotest.bool
        (Printf.sprintf "%s: %d probes < %d docs scanned" name probes docs)
        true (probes < docs))
    pairs

(** The operator tree records the plan shape with counts and rows. *)
let t_operator_tree () =
  let db = idx_db () in
  Engine.set_profiling db true;
  ignore (xquery db q1);
  let p = Engine.profile db in
  let report = Xprof.report p in
  Engine.set_profiling db false;
  List.iter
    (fun op ->
      check Alcotest.bool ("report mentions " ^ op) true
        (contains_sub ~affix:op report))
    [ "PLAN"; "XISCAN li_price"; "XQUERY"; "PATH" ];
  check Alcotest.bool "total time is finite and non-negative" true
    (Xprof.total_ms p >= 0.)

(** Governor headroom: armed limits appear as (resource, used, cap)
    triples with used <= cap; unlimited statements snapshot nothing. *)
let t_governor_headroom () =
  let db = idx_db () in
  Engine.set_limits db
    {
      Xdm.Limits.unlimited with
      Xdm.Limits.max_steps = Some 1_000_000;
      max_depth = Some 100;
    };
  Engine.set_profiling db true;
  ignore (xquery db q2);
  let p = Engine.profile db in
  let gov = p.Xprof.governor in
  check Alcotest.bool "governor snapshot present" true (gov <> []);
  List.iter
    (fun (name, used, cap) ->
      check Alcotest.bool
        (Printf.sprintf "%s: 0 <= %d <= %d" name used cap)
        true
        (0 <= used && used <= cap))
    gov;
  check Alcotest.bool "steps metered" true
    (List.exists (fun (n, used, _) -> n = "steps" && used > 0) gov);
  Engine.set_limits db Xdm.Limits.unlimited;
  ignore (xquery db q2);
  check Alcotest.bool "unarmed statement has no snapshot" true
    (p.Xprof.governor = []);
  Engine.set_profiling db false

(** The registry accumulates across statements while profiling is on. *)
let t_registry_accumulates () =
  let db = idx_db () in
  Engine.set_profiling db true;
  ignore (xquery db q1);
  ignore (sql db "SELECT ordid FROM orders");
  Engine.set_profiling db false;
  let r = Engine.registry db in
  check Alcotest.int "statements_total" 2
    !(Xprof.Registry.counter r "statements_total");
  check Alcotest.int "statement_ms observations" 2
    (Xprof.Hist.count (Xprof.Registry.hist r "statement_ms"));
  check Alcotest.bool "cumulative docs_scanned" true
    (!(Xprof.Registry.counter r "docs_scanned_total") > 0);
  check (Alcotest.float 1e-9) "xml_indexes gauge" 3.
    !(Xprof.Registry.gauge r "xml_indexes")

(** Profiled statements emit valid JSON with the full counter set. *)
let t_profile_json () =
  let db = idx_db () in
  Engine.set_profiling db true;
  ignore (xquery db q1);
  let js = Xprof.Json.to_string (Xprof.to_json (Engine.profile db)) in
  Engine.set_profiling db false;
  List.iter
    (fun affix ->
      check Alcotest.bool ("json has " ^ affix) true (contains_sub ~affix js))
    [
      "\"total_ms\"";
      "\"counters\"";
      "\"index_probes\":1";
      "\"operators\"";
      "\"governor\"";
    ]

(* ------------------------------------------------------------------ *)
(* Property: profiling never changes results                           *)
(* ------------------------------------------------------------------ *)

let prop_profiling_transparent =
  QCheck.Test.make ~name:"profiling never changes query results" ~count:30
    QCheck.(int_range 0 1000)
    (let db = idx_db ~n_orders:25 () in
     fun threshold ->
       let src =
         Printf.sprintf
           "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>%d]"
           threshold
       in
       let plain = Engine.to_xml (fst (xquery db src)) in
       Engine.set_profiling db true;
       let profiled = Engine.to_xml (fst (xquery db src)) in
       Engine.set_profiling db false;
       plain = profiled)

let suite =
  [
    ( "xprof",
      [
        tc "hist percentiles" t_hist_percentiles;
        tc "registry" t_registry;
        tc "json emitter" t_json;
        tc "disabled = zero overhead" t_disabled_zero_overhead;
        tc "counters reset between statements" t_reset_between_statements;
        tc "eligible pairs: probes < docs scanned" t_eligible_pairs;
        tc "operator tree" t_operator_tree;
        tc "governor headroom" t_governor_headroom;
        tc "registry accumulates" t_registry_accumulates;
        tc "profile json" t_profile_json;
        QCheck_alcotest.to_alcotest prop_profiling_transparent;
      ] );
  ]
