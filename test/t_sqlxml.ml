(** SQL/XML layer details: parsing, execution, NULLs, publishing,
    relational indexes, DDL. *)

open Helpers
module SV = Storage.Sql_value

let fresh () =
  let db = Engine.create () in
  ignore (sql db "CREATE TABLE t (a integer, s varchar(10), d XML)");
  db

let sql_tests =
  [
    tc "insert and select star" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (1, 'x', '<a/>')");
        ignore (sql db "INSERT INTO t VALUES (2, 'y', NULL)");
        check Alcotest.int "rows" 2 (sql_count db "SELECT * FROM t"));
    tc "where with literals and 3VL NULL" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (1, 'x', NULL), (2, NULL, NULL)");
        check Alcotest.int "s = 'x'" 1 (sql_count db "SELECT a FROM t WHERE s = 'x'");
        (* NULL <> 'x' is unknown, row dropped *)
        check Alcotest.int "s <> 'x'" 0
          (sql_count db "SELECT a FROM t WHERE s <> 'x'");
        check Alcotest.int "is null" 1
          (sql_count db "SELECT a FROM t WHERE s IS NULL");
        check Alcotest.int "is not null" 1
          (sql_count db "SELECT a FROM t WHERE s IS NOT NULL"));
    tc "SQL string comparison ignores trailing blanks" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (1, 'abc   ', NULL)");
        check Alcotest.int "found" 1
          (sql_count db "SELECT a FROM t WHERE s = 'abc'"));
    tc "cross join cardinality" (fun () ->
        let db = fresh () in
        ignore (sql db "CREATE TABLE u (b integer)");
        ignore (sql db "INSERT INTO t VALUES (1, 'x', NULL), (2, 'y', NULL)");
        ignore (sql db "INSERT INTO u VALUES (10), (20), (30)");
        check Alcotest.int "2*3" 6 (sql_count db "SELECT a, b FROM t, u"));
    tc "equijoin" (fun () ->
        let db = fresh () in
        ignore (sql db "CREATE TABLE u (b integer)");
        ignore (sql db "INSERT INTO t VALUES (1, 'x', NULL), (2, 'y', NULL)");
        ignore (sql db "INSERT INTO u VALUES (2), (3)");
        check Alcotest.int "matches" 1
          (sql_count db "SELECT a FROM t, u WHERE a = b"));
    tc "relational index join probing" (fun () ->
        let db = fresh () in
        ignore (sql db "CREATE TABLE u (b integer)");
        for i = 1 to 50 do
          ignore
            (sql db
               (Printf.sprintf "INSERT INTO t VALUES (%d, 'x', NULL)" i))
        done;
        ignore (sql db "INSERT INTO u VALUES (7), (13)");
        ignore (sql db "CREATE INDEX t_a ON t(a)");
        check Alcotest.int "joined" 2
          (sql_count db "SELECT a FROM u, t WHERE b = a");
        check Alcotest.bool "t_a used" true
          (List.mem "t_a" (last_indexes_used db)));
    tc "relational index range probe" (fun () ->
        let db = fresh () in
        for i = 1 to 30 do
          ignore
            (sql db
               (Printf.sprintf "INSERT INTO t VALUES (%d, 'x', NULL)" i))
        done;
        ignore (sql db "CREATE INDEX t_a ON t(a)");
        check Alcotest.int "a > 25" 5 (sql_count db "SELECT a FROM t WHERE a > 25");
        check Alcotest.bool "used" true
          (List.mem "t_a" (last_indexes_used db)));
    tc "XMLQuery returns empty XML, not NULL rows" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (1, 'x', '<a><b>1</b></a>')");
        ignore (sql db "INSERT INTO t VALUES (2, 'y', '<a/>')");
        let r =
          sql db
            "SELECT XMLQuery('$d//b' passing d as \"d\") FROM t"
        in
        check Alcotest.int "rows" 2 (List.length r.Sqlxml.Sql_exec.rrows));
    tc "XMLCast of empty sequence is NULL" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (1, 'x', '<a/>')");
        let r =
          sql db
            "SELECT XMLCast(XMLQuery('$d//b' passing d as \"d\") as DOUBLE) \
             FROM t"
        in
        check Alcotest.bool "null" true
          (List.hd r.Sqlxml.Sql_exec.rrows = [ SV.Null ]));
    tc "XMLCast numeric conversion failure is a runtime error" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (1, 'x', '<a>abc</a>')");
        expect_error "XQDB0003" (fun () ->
            sql db
              "SELECT XMLCast(XMLQuery('$d/a' passing d as \"d\") as DOUBLE) \
               FROM t"));
    tc "XMLELEMENT publishing" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (7, 'x', NULL)");
        let r =
          sql db "SELECT XMLELEMENT(NAME wrapped, a, s) FROM t"
        in
        match List.hd r.Sqlxml.Sql_exec.rrows with
        | [ SV.Xml seq ] ->
            check Alcotest.string "xml" "<wrapped>7x</wrapped>"
              (Xmlparse.Xml_writer.seq_to_string seq)
        | _ -> Alcotest.fail "expected XML");
    tc "XMLTable BY VALUE copies nodes (fresh identity)" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (1, 'x', '<a><b>1</b></a>')");
        let get by =
          let r =
            sql db
              (Printf.sprintf
                 "SELECT x.c FROM t, XMLTable('$d//b' passing d as \"d\" \
                  COLUMNS \"c\" XML BY %s PATH '.') AS x(c)"
                 by)
          in
          match List.hd r.Sqlxml.Sql_exec.rrows with
          | [ SV.Xml [ Xdm.Item.N n ] ] -> n
          | _ -> Alcotest.fail "expected node"
        in
        let by_ref = get "REF" and by_val = get "VALUE" in
        (* BY REF keeps parent linkage; BY VALUE severs it *)
        check Alcotest.bool "ref has parent" true
          (by_ref.Xdm.Node.parent <> None);
        check Alcotest.bool "value is parentless" true
          (by_val.Xdm.Node.parent = None));
    tc "XMLTable column type conversion and errors" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (1, 'x', '<a><n>42</n></a>')");
        let r =
          sql db
            "SELECT x.v FROM t, XMLTable('$d/a' passing d as \"d\" COLUMNS \
             \"v\" INTEGER PATH 'n') AS x(v)"
        in
        check Alcotest.bool "int 42" true
          (List.hd r.Sqlxml.Sql_exec.rrows = [ SV.Int 42L ]));
    tc "DROP INDEX removes it from planning" (fun () ->
        let db = fresh () in
        ignore (sql db "INSERT INTO t VALUES (1, 'x', '<a p=\"5\"/>')");
        ignore
          (sql db
             "CREATE INDEX ip ON t(d) USING XMLPATTERN '//@p' AS DOUBLE");
        ignore
          (sql db
             "SELECT a FROM t WHERE XMLExists('$d/a[@p > 1]' passing d as \"d\")");
        check Alcotest.bool "used" true
          (List.mem "ip" (last_indexes_used db));
        ignore (sql db "DROP INDEX ip");
        ignore
          (sql db
             "SELECT a FROM t WHERE XMLExists('$d/a[@p > 1]' passing d as \"d\")");
        check Alcotest.(list string) "gone" [] (last_indexes_used db));
    tc "index maintenance under INSERT after CREATE INDEX" (fun () ->
        let db = fresh () in
        ignore
          (sql db
             "CREATE INDEX ip ON t(d) USING XMLPATTERN '//@p' AS DOUBLE");
        ignore (sql db "INSERT INTO t VALUES (1, 'x', '<a p=\"5\"/>')");
        ignore (sql db "INSERT INTO t VALUES (2, 'y', '<a p=\"15\"/>')");
        let n =
          sql_count db
            "SELECT a FROM t WHERE XMLExists('$d/a[@p > 10]' passing d as \"d\")"
        in
        check Alcotest.int "one row" 1 n;
        check Alcotest.bool "used" true
          (List.mem "ip" (last_indexes_used db)));
    tc "duplicate table rejected" (fun () ->
        let db = fresh () in
        match sql db "CREATE TABLE t (x integer)" with
        | _ -> Alcotest.fail "should fail"
        | exception Xdm.Xerror.Error { code = "XQDB0002"; _ } -> ());
    tc "unknown column is a runtime error" (fun () ->
        let db = fresh () in
        expect_error "XQDB0003" (fun () -> sql db "SELECT nosuch FROM t"));
    tc "syntax error reported" (fun () ->
        let db = fresh () in
        expect_error "XPST0003" (fun () -> sql db "SELECT FROM WHERE"));
  ]

let suite = [ ("sqlxml:exec", sql_tests) ]
