(** The static analyzer (lib/analysis): located diagnostics over both
    front ends, the Query 13/14 contrast, the XQLINT0xx rules, strict
    mode, and a never-crashes property. *)

open Helpers
module D = Analysis.Diag

let mk_db () =
  let db = paper_db ~n_orders:10 () in
  ignore
    (sql db
       "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
        '//lineitem/@price' AS DOUBLE");
  db

let db = lazy (mk_db ())

let diags src =
  List.sort D.compare (Engine.analyze (Lazy.force db) src)

let with_code code ds = List.filter (fun d -> d.D.code = code) ds

(** 1-based column of the first occurrence of [sub] in [src] (all test
    sources are single-line, so line is always 1). *)
let col_of src sub =
  let n = String.length sub in
  let rec find i =
    if i + n > String.length src then
      Alcotest.failf "substring %S not found in %S" sub src
    else if String.sub src i n = sub then i + 1
    else find (i + 1)
  in
  find 0

let check_pos src sub (d : D.t) =
  match d.D.pos with
  | None -> Alcotest.failf "%s: no position" d.D.code
  | Some p ->
      check Alcotest.int (d.D.code ^ " line") 1 p.Xdm.Srcloc.line;
      check Alcotest.int (d.D.code ^ " column") (col_of src sub)
        p.Xdm.Srcloc.col

(* the exact Query 13 / Query 14 formulations from t_paper *)
let query13 =
  "SELECT p.name, XMLQuery('$order//lineitem' passing orddoc as \"order\") \
   FROM products p, orders o WHERE XMLExists('$order \
   //lineitem/product[id eq $pid]' passing o.orddoc as \"order\", p.id as \
   \"pid\")"

let query14 =
  "SELECT p.name FROM products p, orders o WHERE p.id = \
   XMLCast(XMLQuery('$order//lineitem/product/id' passing o.orddoc as \
   \"order\") as VARCHAR(13))"

let contrast_tests =
  [
    tc "Query 14: exactly one located XPTY0004 Error" (fun () ->
        let ds = diags query14 in
        let errs = List.filter D.is_error ds in
        check Alcotest.int "one error" 1 (List.length errs);
        let e = List.hd errs in
        check Alcotest.string "code" "XPTY0004" e.D.code;
        check Alcotest.bool "message" true
          (contains_sub ~affix:"more than one item" e.D.message);
        check_pos query14 "'$order//lineitem/product/id'" e);
    tc "Query 13: zero Error-severity diagnostics" (fun () ->
        check Alcotest.int "errors" 0
          (List.length (List.filter D.is_error (diags query13))));
    tc "Query 14 in strict mode is rejected before execution" (fun () ->
        let db = paper_db ~n_orders:3 () in
        Engine.set_strict_types db true;
        (match sql db query14 with
        | _ -> Alcotest.fail "expected a static rejection"
        | exception Xdm.Xerror.Error { code; msg } ->
            check Alcotest.string "code" "XPTY0004" code;
            check Alcotest.bool "message" true
              (contains_sub ~affix:"static check rejected" msg));
        (* the eligible formulation still runs *)
        check Alcotest.bool "Query 13 runs" true (sql_count db query13 >= 0));
    tc "strict mode gates stand-alone XQuery too" (fun () ->
        let db = paper_db ~n_orders:3 () in
        Engine.set_strict_types db true;
        match xquery db "1 + \"abc\"" with
        | _ -> Alcotest.fail "expected a static rejection"
        | exception Xdm.Xerror.Error { code; _ } ->
            check Alcotest.string "code" "XPTY0004" code);
  ]

(* --------------------------------------------------------------- *)
(* XQLINT0xx rules, each with its source position                    *)
(* --------------------------------------------------------------- *)

let rule_tests =
  [
    tc "XQLINT005 (tip) fires on Query 14 with a mapped position" (fun () ->
        match with_code "XQLINT005" (diags query14) with
        | [] -> Alcotest.fail "XQLINT005 absent"
        | d :: _ ->
            check Alcotest.bool "has position" true (d.D.pos <> None));
    tc "XQLINT014: absolute path inside an embedded query" (fun () ->
        let src =
          "SELECT XMLQuery('/order/lineitem' passing orddoc as \"order\") \
           FROM orders"
        in
        match with_code "XQLINT014" (diags src) with
        | [] -> Alcotest.fail "XQLINT014 absent"
        | d :: _ -> check_pos src "/order/lineitem" d);
    tc "XQLINT015: positional predicate, located at the predicate" (fun () ->
        let src = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[2]" in
        match with_code "XQLINT015" (diags src) with
        | [] -> Alcotest.fail "XQLINT015 absent"
        | d :: _ -> check_pos src "2]" d);
    tc "XQLINT016: string comparison against a DOUBLE index" (fun () ->
        let src =
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price = \"100\"]"
        in
        match with_code "XQLINT016" (diags src) with
        | [] -> Alcotest.fail "XQLINT016 absent"
        | d :: _ -> check_pos src "@price = \"100\"" d);
    tc "XQLINT020: contradictory equality predicates" (fun () ->
        let src =
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@linenum = 1]\
           [@linenum = 2]"
        in
        match with_code "XQLINT020" (diags src) with
        | [] -> Alcotest.fail "XQLINT020 absent"
        | d :: _ -> check_pos src "@linenum = 1" d);
    tc "XQLINT021: constant predicate" (fun () ->
        let src = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[true()]" in
        match with_code "XQLINT021" (diags src) with
        | [] -> Alcotest.fail "XQLINT021 absent"
        | d :: _ ->
            check_pos src "true()" d;
            check Alcotest.bool "always true" true
              (contains_sub ~affix:"always true" d.D.message));
    tc "XQLINT022: schema-impossible step name" (fun () ->
        let schema =
          Xschema.make "s" [ ("/order/lineitem/price", Xdm.Atomic.TDouble) ]
        in
        let src = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitme" in
        match
          with_code "XQLINT022" (Analysis.Analyze.analyze_string ~schema src)
        with
        | [] -> Alcotest.fail "XQLINT022 absent"
        | d :: _ ->
            check Alcotest.bool "names the step" true
              (contains_sub ~affix:"lineitme" d.D.message));
    tc "XQLINT023: navigation below an attribute" (fun () ->
        let src = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem/@price/foo" in
        match with_code "XQLINT023" (diags src) with
        | [] -> Alcotest.fail "XQLINT023 absent"
        | d :: _ -> check Alcotest.bool "has position" true (d.D.pos <> None));
    tc "at least 8 distinct XQLINT rules exist in the registry" (fun () ->
        check Alcotest.bool "registry size" true
          (List.length Analysis.Rules.all >= 18));
  ]

(* --------------------------------------------------------------- *)
(* Type & cardinality pass, front-end located syntax errors          *)
(* --------------------------------------------------------------- *)

let type_tests =
  [
    tc "arithmetic on a non-numeric literal is XPTY0004" (fun () ->
        let ds = with_code "XPTY0004" (diags "1 + \"abc\"") in
        check Alcotest.bool "flagged" true (List.exists D.is_error ds));
    tc "uncastable literal is FORG0001" (fun () ->
        let ds = with_code "FORG0001" (diags "\"abc\" cast as xs:double") in
        check Alcotest.bool "flagged" true (List.exists D.is_error ds));
    tc "unknown function is a located XPST0017" (fun () ->
        let src = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[fn:exsts(.)]" in
        match with_code "XPST0017" (diags src) with
        | [] -> Alcotest.fail "XPST0017 absent"
        | d :: _ ->
            check Alcotest.bool "error" true (D.is_error d);
            check_pos src "fn:exsts" d);
    tc "wrong arity is XPST0017" (fun () ->
        check Alcotest.bool "flagged" true
          (List.exists D.is_error
             (with_code "XPST0017" (diags "fn:count(1, 2, 3)"))));
    tc "value comparison is not occurrence-checked (Query 13 shape)" (fun () ->
        let src =
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem/product[id eq \
           \"id-000001\"]"
        in
        check Alcotest.int "no errors" 0
          (List.length (List.filter D.is_error (diags src))));
    tc "XQuery syntax error carries line, column and caret" (fun () ->
        match Xquery.Parser.parse_query "for $x in" with
        | _ -> Alcotest.fail "expected a syntax error"
        | exception Xdm.Xerror.Error { code; msg } ->
            check Alcotest.string "code" "XPST0003" code;
            check Alcotest.bool "location" true
              (contains_sub ~affix:"line 1, column" msg);
            check Alcotest.bool "caret" true (contains_sub ~affix:"^" msg));
    tc "SQL syntax error carries line, column and caret" (fun () ->
        match Sqlxml.Sql_parser.parse "SELECT ordid FRM orders" with
        | _ -> Alcotest.fail "expected a syntax error"
        | exception Sqlxml.Sql_lexer.Sql_syntax_error msg ->
            check Alcotest.bool "location" true
              (contains_sub ~affix:"line 1, column" msg);
            check Alcotest.bool "caret" true (contains_sub ~affix:"^" msg));
    tc "analyze is total: syntax errors become diagnostics" (fun () ->
        match diags "for $x in" with
        | [ d ] ->
            check Alcotest.bool "error" true (D.is_error d);
            check Alcotest.string "code" "XPST0003" d.D.code
        | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
    tc "advisor parity: tip diagnostics match Engine.advise" (fun () ->
        let src =
          "SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc \
           as \"order\") FROM orders"
        in
        let tips =
          List.sort_uniq compare
            (List.filter_map (fun d -> d.D.tip) (diags src))
        in
        let advised =
          List.sort_uniq compare
            (List.map
               (fun a -> a.Engine.Advisor.tip)
               (Engine.advise (Lazy.force db) src))
        in
        check Alcotest.(list int) "same tips" advised tips);
  ]

(* --------------------------------------------------------------- *)
(* Corpus sweep + never-crashes property                             *)
(* --------------------------------------------------------------- *)

(* representative statements from the paper corpus (t_paper): all must
   analyze without an analyzer failure (XQLINT000) *)
let corpus =
  [
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100]";
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order where \
     $o/lineitem/@price > 100 return $o/custid";
    "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order for $j in \
     db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer where \
     $i/custid/xs:double(.) = $j/id/xs:double(.) return $i";
    "SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc as \
     \"order\") FROM orders";
    "SELECT ordid FROM orders WHERE XMLExists('$order//lineitem[@price > \
     100]' passing orddoc as \"order\")";
    "SELECT o.ordid, t.price FROM orders o, XMLTable('$order//lineitem' \
     passing o.orddoc as \"order\" COLUMNS \"price\" DOUBLE PATH \
     '@price') as t(price)";
    query13;
    query14;
    "let $c := fn:count(db2-fn:xmlcolumn('ORDERS.ORDDOC')/order) return $c";
    "some $p in db2-fn:xmlcolumn('ORDERS.ORDDOC')//@price satisfies \
     xs:double($p) > 400";
  ]

let corpus_tests =
  [
    tc "paper corpus: the analyzer completes on every statement" (fun () ->
        List.iter
          (fun src ->
            List.iter
              (fun (d : D.t) ->
                if d.D.code = "XQLINT000" then
                  Alcotest.failf "analyzer failure on %S: %s" src d.D.message)
              (diags src))
          corpus);
  ]

(* random parser-accepted queries: the analyzer must neither raise nor
   report an internal failure *)
let gen_query =
  QCheck.Gen.(
    let name = oneofl [ "order"; "lineitem"; "price"; "product"; "id" ] in
    let pred =
      oneofl
        [
          "";
          "[@price > 100]";
          "[2]";
          "[true()]";
          "[@id = 1][@id = 2]";
          "[id eq \"x\"]";
          "[fn:count(.) > 1]";
        ]
    in
    let step = map2 (fun n p -> "/" ^ n ^ p) name pred in
    let* root =
      oneofl
        [ "db2-fn:xmlcolumn('ORDERS.ORDDOC')"; "(1, 2, 3)"; "." ]
    in
    let* steps = list_size (int_range 0 4) step in
    let* tail = oneofl [ ""; "/@price"; "/text()"; "/@price/foo" ] in
    let body = root ^ String.concat "" steps ^ tail in
    oneofl
      [
        body;
        Printf.sprintf "for $x in %s return $x" body;
        Printf.sprintf "fn:count(%s)" body;
        Printf.sprintf
          "SELECT ordid FROM orders WHERE XMLExists('%s' passing orddoc as \
           \"d\")"
          (String.concat ""
             (List.map
                (fun c -> if c = '\'' then "''" else String.make 1 c)
                (List.init (String.length body) (String.get body))));
      ])

let prop_lint_total =
  QCheck.Test.make ~count:200 ~name:"analysis: never crashes, no XQLINT000"
    (QCheck.make gen_query ~print:(fun s -> s))
    (fun src ->
      let ds = Engine.analyze (Lazy.force db) src in
      List.for_all (fun (d : D.t) -> d.D.code <> "XQLINT000") ds)

let suite =
  [
    ("analysis:contrast", contrast_tests);
    ("analysis:rules", rule_tests);
    ("analysis:types", type_tests);
    ("analysis:corpus", corpus_tests);
    ("analysis:prop", [ QCheck_alcotest.to_alcotest prop_lint_total ]);
  ]
