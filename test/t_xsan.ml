(** Xsan test suite: the static domain-safety lint (source scan +
    annotation registry), the runtime lock-order/deadlock tracker, the
    schedule-perturbing stress mode, and contention stress over the two
    lock-guarded shared structures (the resource governor's forked
    meters and the plan cache).

    The lint half runs against a committed seed fixture
    ([fixtures/racy_fixture.ml], never compiled) and asserts each
    diagnostic class fires; the lock-order half builds a real two-lock
    inversion and asserts the tracker reports the cycle with both lock
    names. *)

open Helpers
module D = Analysis.Diag
module Src = Xsan.Srccheck
module Reg = Xsan.Registry
module LO = Xpar.Lockorder
module Plan_cache = Engine.Plan_cache

(* Tests run from _build/default/test under `dune runtest`, but from the
   repo root under `dune exec test/test_main.exe`. *)
let fixture_path name =
  let cands =
    [
      Filename.concat "fixtures" name;
      Filename.concat (Filename.concat "test" "fixtures") name;
    ]
  in
  match List.find_opt Sys.file_exists cands with
  | Some p -> p
  | None -> Alcotest.failf "fixture not found: %s" name

let codes (ds : D.t list) : string list =
  List.sort_uniq compare (List.map (fun d -> d.D.code) ds)

(* ------------------------------------------------------------------ *)
(* Source lint                                                         *)
(* ------------------------------------------------------------------ *)

let lint_tests =
  [
    tc "seeded race fixture trips every diagnostic class" (fun () ->
        let ds = Src.check_file (fixture_path "racy_fixture.ml") in
        let cs = codes ds in
        List.iter
          (fun c ->
            check Alcotest.bool (c ^ " reported") true (List.mem c cs))
          [ "XSAN001"; "XSAN002"; "XSAN003"; "XSAN004"; "XSAN005" ];
        (* ref, Hashtbl, lazy, Mutex are errors; Random use is a warning *)
        List.iter
          (fun d ->
            let want =
              if d.D.code = "XSAN004" then D.Warning else D.Error
            in
            check Alcotest.bool (d.D.code ^ " severity") true
              (d.D.severity = want))
          ds);
    tc "function-local state is not flagged" (fun () ->
        let src =
          "let f () =\n\
          \  let h = Hashtbl.create 8 in\n\
          \  let c = ref 0 in\n\
          \  incr c; Hashtbl.replace h !c !c; Hashtbl.length h\n\
           let g = fun () -> lazy (f ())\n"
        in
        check Alcotest.(list string) "no findings" []
          (codes (Src.check_source ~filename:"clean.ml" src)));
    tc "top-level creations inside let/seq/module bindings are found"
      (fun () ->
        let src =
          "let a = let x = 1 in (x, Hashtbl.create 4)\n\
           module M = struct\n\
          \  let b = if true then ref 0 else ref 1\n\
           end\n\
           let () = ignore (Queue.create ())\n"
        in
        let cs = codes (Src.check_source ~filename:"nested.ml" src) in
        check Alcotest.(list string) "codes" [ "XSAN001"; "XSAN002" ] cs);
    tc "Random.State is allowed, global Random is not" (fun () ->
        let src =
          "let mk seed = Random.State.make [| seed |]\n\
           let roll st = Random.State.int st 6\n"
        in
        check Alcotest.(list string) "State ok" []
          (codes (Src.check_source ~filename:"rand_ok.ml" src));
        let bad = "let roll () = Random.int 6\n" in
        check
          Alcotest.(list string)
          "global flagged" [ "XSAN004" ]
          (codes (Src.check_source ~filename:"rand_bad.ml" bad)));
    tc "unparseable source is XSAN009, not an exception" (fun () ->
        let ds = Src.check_source ~filename:"broken.ml" "let let = in" in
        check Alcotest.(list string) "parse diag" [ "XSAN009" ] (codes ds));
  ]

(* ------------------------------------------------------------------ *)
(* Annotation registry                                                 *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    tc "parses policies, reasons and lock names" (fun () ->
        let src =
          "# comment\n\
           [module \"engine/plan_cache\"]\n\
           policy = \"guarded_by:engine.plan_cache\"\n\
           reason = \"LRU guarded internally\"\n\n\
           [module \"eligibility/extract\"]\n\
           policy = \"seq_only\"\n"
        in
        let t, diags = Reg.parse ~path:"xsan.toml" src in
        check Alcotest.int "no diags" 0 (List.length diags);
        check Alcotest.int "two entries" 2 (List.length (Reg.entries t));
        (match Reg.find t "engine/plan_cache" with
        | Some e ->
            check Alcotest.bool "guarded_by lock name" true
              (e.Reg.policy = Reg.Guarded_by "engine.plan_cache");
            check
              Alcotest.(option string)
              "reason kept"
              (Some "LRU guarded internally")
              e.Reg.reason
        | None -> Alcotest.fail "plan_cache entry missing");
        match Reg.find t "eligibility/extract" with
        | Some e ->
            check Alcotest.bool "seq_only" true (e.Reg.policy = Reg.Seq_only)
        | None -> Alcotest.fail "extract entry missing");
    tc "a section without a policy line is an error" (fun () ->
        let src = "[module \"a/b\"]\nreason = \"oops\"\n" in
        let t, diags = Reg.parse ~path:"xsan.toml" src in
        check Alcotest.(list string) "XSAN009" [ "XSAN009" ] (codes diags);
        check Alcotest.int "entry dropped" 0 (List.length (Reg.entries t)));
    tc "duplicate sections are an error" (fun () ->
        let src =
          "[module \"a/b\"]\npolicy = \"seq_only\"\n\
           [module \"a/b\"]\npolicy = \"domain_safe\"\n"
        in
        let _, diags = Reg.parse ~path:"xsan.toml" src in
        check Alcotest.(list string) "XSAN009" [ "XSAN009" ] (codes diags));
    tc "policy_of_string round-trips and rejects junk" (fun () ->
        List.iter
          (fun p ->
            check Alcotest.bool
              (Reg.policy_to_string p ^ " round-trips")
              true
              (Reg.policy_of_string (Reg.policy_to_string p) = Some p))
          [ Reg.Domain_safe; Reg.Seq_only; Reg.Guarded_by "x.y" ];
        check Alcotest.bool "junk rejected" true
          (Reg.policy_of_string "bogus" = None);
        check Alcotest.bool "bare guarded_by rejected" true
          (Reg.policy_of_string "guarded_by:" = None));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end scan: suppression and stale entries                      *)
(* ------------------------------------------------------------------ *)

let with_temp_module f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xsan_scan_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir "racy.ml" in
  let oc = open_out path in
  output_string oc "let cache = Hashtbl.create 8\nlet n = ref 0\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f ~dir ~path)

let scan_tests =
  [
    tc "unannotated findings count as errors" (fun () ->
        with_temp_module (fun ~dir ~path:_ ->
            let r = Src.scan [ dir ] in
            check Alcotest.int "one file" 1 r.Src.files;
            check Alcotest.int "two findings" 2 r.Src.findings;
            check Alcotest.int "both errors" 2 r.Src.errors));
    tc "a registry policy suppresses but counts" (fun () ->
        with_temp_module (fun ~dir ~path ->
            let key = Src.modkey_of_path path in
            let src =
              Printf.sprintf "[module %S]\npolicy = \"domain_safe\"\n" key
            in
            let reg, diags = Reg.parse ~path:"inline" src in
            let r = Src.scan ~registry:reg ~registry_diags:diags [ dir ] in
            check Alcotest.int "no findings" 0 r.Src.findings;
            check Alcotest.int "no errors" 0 r.Src.errors;
            match r.Src.reports with
            | [ rep ] ->
                check Alcotest.int "suppressed count" 2 rep.Src.suppressed
            | _ -> Alcotest.fail "expected one report"));
    tc "a stale registry entry fails the scan (XSAN008)" (fun () ->
        with_temp_module (fun ~dir ~path ->
            let key = Src.modkey_of_path path in
            let src =
              Printf.sprintf
                "[module %S]\npolicy = \"domain_safe\"\n\
                 [module \"ghost/module\"]\npolicy = \"seq_only\"\n"
                key
            in
            let reg, diags = Reg.parse ~path:"inline" src in
            let r = Src.scan ~registry:reg ~registry_diags:diags [ dir ] in
            check
              Alcotest.(list string)
              "stale diag" [ "XSAN008" ]
              (codes r.Src.registry_diags);
            check Alcotest.bool "scan fails" true (r.Src.errors > 0)));
    tc "the real codebase registry has no stale entries" (fun () ->
        (* mirrors @racecheck: every xsan.toml key must still resolve *)
        let root =
          if Sys.file_exists "xsan.toml" then "."
          else Filename.concat ".." ".."
        in
        let reg_path = Filename.concat root "xsan.toml" in
        if Sys.file_exists reg_path then begin
          let reg, diags = Reg.load reg_path in
          check Alcotest.int "registry parses" 0 (List.length diags);
          let r =
            Src.scan ~registry:reg
              ~exclude:[ "xpar_backend.ml" ]
              [ Filename.concat root "lib" ]
          in
          check
            Alcotest.(list string)
            "no stale entries" []
            (codes r.Src.registry_diags)
        end);
  ]

(* ------------------------------------------------------------------ *)
(* Lock-order tracker                                                  *)
(* ------------------------------------------------------------------ *)

let lockorder_tests =
  [
    tc "consistent ordering yields edges but no cycle" (fun () ->
        LO.reset ();
        let a = Xpar.Lock.create ~name:"xsan.test.c1" () in
        let b = Xpar.Lock.create ~name:"xsan.test.c2" () in
        for _ = 1 to 3 do
          Xpar.Lock.with_lock a (fun () ->
              Xpar.Lock.with_lock b (fun () -> ()))
        done;
        let s = LO.stats () in
        check Alcotest.bool "edge recorded" true (s.LO.edges >= 1);
        check Alcotest.int "no cycle" 0 s.LO.cycles;
        check Alcotest.int "acquisitions tracked" 6 s.LO.acquisitions);
    tc "two-lock inversion is reported as a potential deadlock" (fun () ->
        LO.reset ();
        let a = Xpar.Lock.create ~name:"xsan.test.inv_a" () in
        let b = Xpar.Lock.create ~name:"xsan.test.inv_b" () in
        Xpar.Lock.with_lock a (fun () ->
            Xpar.Lock.with_lock b (fun () -> ()));
        Xpar.Lock.with_lock b (fun () ->
            Xpar.Lock.with_lock a (fun () -> ()));
        let s = LO.stats () in
        check Alcotest.bool "cycle detected" true (s.LO.cycles >= 1);
        let cyc = LO.cycles () in
        check Alcotest.bool "cycle names both locks" true
          (List.exists
             (fun names ->
               List.mem "xsan.test.inv_a" names
               && List.mem "xsan.test.inv_b" names)
             cyc);
        let rep = LO.report () in
        let has needle =
          let nl = String.length needle and rl = String.length rep in
          let rec go i =
            i + nl <= rl && (String.sub rep i nl = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "report flags the deadlock" true
          (has "POTENTIAL DEADLOCK");
        check Alcotest.bool "report names the locks" true
          (has "xsan.test.inv_a" && has "xsan.test.inv_b");
        LO.reset ();
        check Alcotest.int "reset clears cycles" 0 (LO.stats ()).LO.cycles);
    tc "nested reacquisition of the same lock is not an edge" (fun () ->
        (* with_lock on the sequential backend is reentrant-by-noop; the
           tracker must not invent a self-edge for a->a *)
        LO.reset ();
        let a = Xpar.Lock.create ~name:"xsan.test.self" () in
        Xpar.Lock.with_lock a (fun () -> ());
        Xpar.Lock.with_lock a (fun () -> ());
        check Alcotest.int "no self edge" 0 (LO.stats ()).LO.edges);
  ]

(* ------------------------------------------------------------------ *)
(* Stress mode + contention                                            *)
(* ------------------------------------------------------------------ *)

let with_stress seed f =
  let prev = Xpar.stress () in
  Xpar.set_stress (Some seed);
  Fun.protect ~finally:(fun () -> Xpar.set_stress prev) f

let stress_tests =
  [
    tc "stress dispatch preserves the determinism contract" (fun () ->
        let xs = List.init 500 (fun i -> i) in
        let expect = List.map (fun i -> (i * 37) mod 101) xs in
        with_stress 42 (fun () ->
            check
              Alcotest.(list int)
              "map_list under stress" expect
              (Xpar.map_list ~parallelism:4 ~chunk_size:16
                 (fun i -> (i * 37) mod 101)
                 xs));
        (* a different seed must give the same (merged) answer *)
        with_stress 7 (fun () ->
            check
              Alcotest.(list int)
              "seed-independent" expect
              (Xpar.map_list ~parallelism:4 ~chunk_size:16
                 (fun i -> (i * 37) mod 101)
                 xs)));
    tc "governor: forked meters charge one shared budget" (fun () ->
        let n = 5000 in
        let limits =
          { Xdm.Limits.unlimited with Xdm.Limits.max_steps = Some (10 * n) }
        in
        let m = Xdm.Limits.meter ~limits () in
        let chunks =
          Xpar.map_chunks ~parallelism:4 ~chunk_size:64
            (fun _ arr ->
              let fm = Xdm.Limits.fork m in
              Array.iter (fun _ -> Xdm.Limits.step fm) arr;
              Array.length arr)
            (Array.init n (fun i -> i))
        in
        let total =
          Array.fold_left ( + ) 0 (Xpar.join chunks)
        in
        check Alcotest.int "every item ran once" n total;
        match List.assoc_opt "steps" (
          List.map (fun (k, u, c) -> (k, (u, c))) (Xdm.Limits.usage m))
        with
        | Some (used, _) -> check Alcotest.int "steps counted exactly" n used
        | None -> Alcotest.fail "steps cap missing from usage");
    tc "governor: XQDB0001 parity between parallel and sequential"
      (fun () ->
        let n = 2000 in
        let limits =
          { Xdm.Limits.unlimited with Xdm.Limits.max_steps = Some (n / 2) }
        in
        let run par () =
          let m = Xdm.Limits.meter ~limits () in
          Array.iter ignore
            (Xpar.join
               (Xpar.map_chunks ~parallelism:par ~chunk_size:64
                  (fun _ arr ->
                    let fm = Xdm.Limits.fork m in
                    Array.iter (fun _ -> Xdm.Limits.step fm) arr)
                  (Array.init n (fun i -> i))))
        in
        expect_error "XQDB0001" (run 1);
        with_stress 3 (fun () -> expect_error "XQDB0001" (run 4)));
    tc "plan cache: hammered stats stay coherent" (fun () ->
        let cache : int Plan_cache.t = Plan_cache.create ~capacity:8 () in
        let n = 1000 in
        with_stress 11 (fun () ->
            Xpar.parallel_for ~parallelism:4 ~chunk_size:32 0 n (fun i ->
                let key = "k" ^ string_of_int (i mod 32) in
                match Plan_cache.find cache ~gen:1 ~fp:"fp" key with
                | Some _ -> ()
                | None -> ignore (Plan_cache.add cache ~gen:1 ~fp:"fp" key i)));
        let s = Plan_cache.stats cache in
        check Alcotest.bool "size bounded" true
          (s.Plan_cache.size <= s.Plan_cache.capacity);
        check Alcotest.int "size = length" (Plan_cache.length cache)
          s.Plan_cache.size;
        check Alcotest.int "every lookup accounted" n
          (s.Plan_cache.hits + s.Plan_cache.misses);
        check Alcotest.int "no invalidations under one generation" 0
          s.Plan_cache.invalidations);
    tc "plan cache: generation bump invalidates under contention" (fun () ->
        let cache : int Plan_cache.t = Plan_cache.create ~capacity:64 () in
        for i = 0 to 15 do
          ignore
            (Plan_cache.add cache ~gen:1 ~fp:"fp"
               ("k" ^ string_of_int i)
               i)
        done;
        Xpar.parallel_for ~parallelism:4 0 16 (fun i ->
            check Alcotest.bool "stale entry dropped" true
              (Plan_cache.find cache ~gen:2 ~fp:"fp"
                 ("k" ^ string_of_int i)
              = None));
        let s = Plan_cache.stats cache in
        check Alcotest.int "all 16 invalidated" 16
          s.Plan_cache.invalidations;
        check Alcotest.int "cache emptied" 0 s.Plan_cache.size);
  ]

let suite =
  [
    ("xsan:lint", lint_tests);
    ("xsan:registry", registry_tests);
    ("xsan:scan", scan_tests);
    ("xsan:lockorder", lockorder_tests);
    ("xsan:stress", stress_tests);
  ]
