(** Shared test helpers. *)

open Xdm

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let parse_doc s = Xmlparse.Xml_parser.parse_document s

(** Evaluate a stand-alone XQuery over named collections given as XML
    strings; returns the result sequence. *)
let xq ?(collections : (string * string list) list = []) (src : string) :
    Item.seq =
  let docs =
    List.map
      (fun (name, xmls) -> (name, List.map (fun x -> Item.N (parse_doc x)) xmls))
      collections
  in
  let resolver name =
    match
      List.assoc_opt (String.lowercase_ascii name)
        (List.map (fun (n, d) -> (String.lowercase_ascii n, d)) docs)
    with
    | Some d -> d
    | None -> Xerror.raise_err "FODC0002" "unknown collection %S" name
  in
  Xquery.Eval.run_string ~resolver src

(** Evaluate and serialize. *)
let xq_str ?collections src = Xmlparse.Xml_writer.seq_to_string (xq ?collections src)

(** Expect a dynamic/static error with the given code. *)
let expect_error code f =
  match f () with
  | _ -> Alcotest.failf "expected error [%s], got a result" code
  | exception Xerror.Error e ->
      check Alcotest.string "error code" code e.code

(** {2 Sealed-path statement helpers}

    The tests below predate the structured {!Engine.exec} API and were
    written against the deprecated one-shot wrappers. These helpers keep
    the historical shapes ([Sql_exec.result] rows, [(items, plan)]
    pairs, last-statement accessors) while routing every statement
    through the sealed path — plan cache, autocommit writer slot, coded
    errors. *)

let last_outcome : Engine.outcome option ref = ref None

let exec db src : Engine.outcome =
  let o = Engine.exec db src in
  last_outcome := Some o;
  o

(** [Engine.sql] replacement: same result record, sealed path. Errors
    arrive coded ([Xdm.Xerror.Error]) rather than layer-private. *)
let sql db src : Sqlxml.Sql_exec.result =
  match (exec db src).Engine.payload with
  | Engine.Rows { cols; rows } ->
      { Sqlxml.Sql_exec.rcols = cols; rrows = rows }
  | Engine.Items _ -> Alcotest.fail "expected a rows payload"

(** [Engine.xquery] replacement: [(items, plan)] with the plan rebuilt
    from the outcome (restrictions are not surfaced by [exec]). *)
let xquery db src : Item.seq * Planner.t =
  let o = exec db src in
  ( Engine.outcome_items o,
    {
      Planner.restrictions = [];
      notes = o.Engine.notes;
      indexes_used = o.Engine.indexes_used;
    } )

(** [Engine.xquery_noindex] replacement: run with index use off. *)
let xquery_noindex db src : Item.seq =
  let saved = Engine.use_indexes db in
  Engine.set_use_indexes db false;
  Fun.protect
    ~finally:(fun () -> Engine.set_use_indexes db saved)
    (fun () -> Engine.outcome_items (exec db src))

let last_notes (_ : Engine.t) : string list =
  match !last_outcome with Some o -> o.Engine.notes | None -> []

let last_indexes_used (_ : Engine.t) : string list =
  match !last_outcome with Some o -> o.Engine.indexes_used | None -> []

(** A fresh engine preloaded with the paper's three tables and [n] orders
    with deterministic content. *)
let paper_db ?(n_orders = 60) ?(orders_params = Workload.Orders_gen.default)
    () =
  let db = Engine.create () in
  ignore (sql db "CREATE TABLE orders (ordid integer, orddoc XML)");
  ignore (sql db "CREATE TABLE customer (cid integer, cdoc XML)");
  ignore (sql db "CREATE TABLE products (id varchar(13), name varchar(32))");
  let p = { orders_params with Workload.Orders_gen.n_customers = 20; n_products = 30 } in
  Engine.load_documents db ~table:"orders" ~column:"orddoc"
    (Workload.Orders_gen.orders p n_orders);
  Engine.load_documents db ~table:"customer" ~column:"cdoc"
    (Workload.Orders_gen.customers p);
  List.iter
    (fun (id, name) ->
      ignore
        (sql db
           (Printf.sprintf "INSERT INTO products VALUES ('%s', '%s')" id name)))
    (Workload.Orders_gen.products p);
  db

(** Assert that an indexed run and a collection-scan run of a stand-alone
    XQuery produce identical serialized results (Definition 1), and
    return the plan. *)
let assert_def1 db src : Planner.t =
  let with_idx, plan = xquery db src in
  let without = xquery_noindex db src in
  check Alcotest.string
    ("Definition 1: " ^ src)
    (Xmlparse.Xml_writer.seq_to_string without)
    (Xmlparse.Xml_writer.seq_to_string with_idx);
  plan

let used plan = plan.Planner.indexes_used

(** Row count of a SQL statement. *)
let sql_count db src = List.length (sql db src).Sqlxml.Sql_exec.rrows

(** Substring test (avoids external deps). *)
let contains_sub ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0
