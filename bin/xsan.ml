(** xsan — the concurrency lint CLI (the [@racecheck] build alias).

    {v xsan [--registry xsan.toml] [--json] [ROOT...] v}

    Lints every [.ml] under the given roots (default [lib]) with
    {!Xsan.Srccheck}, applying the annotation registry's per-module
    policies, and exits non-zero if any unsuppressed Error-severity
    diagnostic remains — same contract as [xqdb --lint]. See
    docs/CONCURRENCY.md. *)

open Cmdliner

let run registry_path json exclude roots =
  let registry, registry_diags =
    match registry_path with
    | Some p -> Xsan.Registry.load p
    | None -> (Xsan.Registry.empty (), [])
  in
  let roots = if roots = [] then [ "lib" ] else roots in
  let res = Xsan.Srccheck.scan ~registry ~registry_diags ~exclude roots in
  if json then begin
    let file_json (r : Xsan.Srccheck.file_report) =
      Printf.sprintf
        "{\"file\":\"%s\",\"policy\":%s,\"suppressed\":%d,\"diagnostics\":%s}"
        (Analysis.Diag.json_escape r.Xsan.Srccheck.path)
        (match r.Xsan.Srccheck.policy with
        | Some p ->
            Printf.sprintf "\"%s\"" (Xsan.Registry.policy_to_string p)
        | None -> "null")
        r.Xsan.Srccheck.suppressed
        (Analysis.Diag.list_to_json r.Xsan.Srccheck.diags)
    in
    Printf.printf
      "{\"files\":%d,\"findings\":%d,\"errors\":%d,\"registry\":%s,\"reports\":[%s]}\n"
      res.Xsan.Srccheck.files res.Xsan.Srccheck.findings
      res.Xsan.Srccheck.errors
      (Analysis.Diag.list_to_json res.Xsan.Srccheck.registry_diags)
      (String.concat ","
         (List.map file_json
            (List.filter
               (fun (r : Xsan.Srccheck.file_report) ->
                 r.Xsan.Srccheck.diags <> [] || r.Xsan.Srccheck.suppressed > 0)
               res.Xsan.Srccheck.reports)))
  end
  else begin
    List.iter
      (fun (r : Xsan.Srccheck.file_report) ->
        if r.Xsan.Srccheck.diags <> [] then begin
          Printf.printf "== %s\n" r.Xsan.Srccheck.path;
          let src = try Xsan.Srccheck.read_file r.Xsan.Srccheck.path with _ -> "" in
          List.iter
            (fun d -> print_endline (Analysis.Diag.to_string ~src d))
            r.Xsan.Srccheck.diags
        end)
      res.Xsan.Srccheck.reports;
    List.iter
      (fun d -> print_endline (Analysis.Diag.to_string d))
      res.Xsan.Srccheck.registry_diags;
    let suppressed =
      List.fold_left
        (fun acc (r : Xsan.Srccheck.file_report) ->
          acc + r.Xsan.Srccheck.suppressed)
        0 res.Xsan.Srccheck.reports
    in
    Printf.printf
      "xsan: %d files, %d findings (%d suppressed by registry), %d errors\n"
      res.Xsan.Srccheck.files res.Xsan.Srccheck.findings suppressed
      res.Xsan.Srccheck.errors
  end;
  if res.Xsan.Srccheck.errors > 0 then exit 1

let registry_arg =
  let doc = "Annotation registry file (xsan.toml); omit for none." in
  Arg.(value & opt (some string) None & info [ "registry" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc = "Machine-readable JSON output." in
  Arg.(value & flag & info [ "json" ] ~doc)

let exclude_arg =
  let doc =
    "Skip files with this basename (repeatable); used for dune-generated \
     copies whose sources are scanned separately."
  in
  Arg.(value & opt_all string [] & info [ "exclude" ] ~docv:"NAME" ~doc)

let roots_arg =
  let doc = "Directories (or single .ml files) to lint; default lib." in
  Arg.(value & pos_all string [] & info [] ~docv:"ROOT" ~doc)

let cmd =
  let doc = "domain-safety lint for the xqdb codebase" in
  Cmd.v
    (Cmd.info "xsan" ~doc)
    Term.(const run $ registry_arg $ json_arg $ exclude_arg $ roots_arg)

let () = exit (Cmd.eval cmd)
