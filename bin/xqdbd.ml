(** xqdbd — the network server: one shared engine served to concurrent
    remote sessions over the Xnet wire protocol (docs/SERVER.md).

    Sessions share the plan cache (a statement one client compiled is a
    cache hit for every other), get private prepared-statement
    namespaces, per-session governor budgets and per-session explicit
    transactions (wire v2 Begin/Commit/Rollback — reads run on MVCC
    snapshots and never block behind another session's bulk load), and
    are capped by [--max-sessions] (further connections get an XQDB0001
    error frame).
    SIGTERM/SIGINT trigger a graceful drain: stop accepting, let live
    sessions finish (up to [--drain-timeout]), force stragglers shut,
    exit 0. [--metrics PORT] serves the Xprof plaintext exposition on a
    second listener. *)

let parse_hostport ~what (s : string) : string * int =
  match String.rindex_opt s ':' with
  | Some i -> (
      let h = String.sub s 0 i in
      let p = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt p with
      | Some p when p >= 0 -> ((if h = "" then "127.0.0.1" else h), p)
      | _ -> failwith (Printf.sprintf "bad %s address %S" what s))
  | None -> failwith (Printf.sprintf "bad %s address %S (want HOST:PORT)" what s)

(* Signal handlers only flip this flag; the drain itself (joins,
   socket shutdowns) runs on the main thread's wait loop below. *)
let want_stop = Atomic.make false

let main listen metrics data_dir no_fsync max_sessions parallel drain_timeout =
  let host, port =
    try parse_hostport ~what:"--listen" listen
    with Failure m ->
      prerr_endline ("xqdbd: " ^ m);
      exit 2
  in
  let engine =
    match data_dir with
    | None -> Engine.create ()
    | Some dir -> Engine.open_db ~sync:(not no_fsync) ~data_dir:dir ()
  in
  if parallel > 1 then Engine.set_parallelism engine parallel;
  let log m =
    Printf.printf "xqdbd: %s\n" m;
    flush stdout
  in
  let cfg =
    {
      Xnet.Server.host;
      port;
      metrics_port = metrics;
      max_sessions;
      drain_timeout;
      log;
    }
  in
  let srv =
    try Xnet.Server.start ~engine cfg
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "xqdbd: cannot listen on %s:%d: %s\n" host port
        (Unix.error_message e);
      exit 1
  in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set want_stop true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  while not (Atomic.get want_stop) do
    Thread.delay 0.05
  done;
  log "shutting down (draining sessions)";
  Xnet.Server.stop srv;
  Engine.close engine;
  log "bye";
  exit 0

open Cmdliner

let listen_arg =
  Arg.(
    value
    & opt string "127.0.0.1:5499"
    & info [ "listen" ] ~docv:"HOST:PORT"
        ~doc:"Address to serve the wire protocol on (port 0 = ephemeral).")

let metrics_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics" ] ~docv:"PORT"
        ~doc:
          "Also serve the plaintext metrics exposition (Xprof registry + \
           server gauges + plan-cache line) on $(docv); one response per \
           connection. See docs/OBSERVABILITY.md.")

let data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Serve a durable database from $(docv) (created and recovered \
           as needed). Without this flag the server is in-memory and its \
           contents die with the process.")

let no_fsync_arg =
  Arg.(
    value & flag
    & info [ "no-fsync" ]
        ~doc:"With $(b,--data-dir): skip the per-commit fsync.")

let max_sessions_arg =
  Arg.(
    value & opt int 64
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:
          "Admission cap: concurrent sessions beyond $(docv) are refused \
           with an XQDB0001 error frame.")

let parallel_arg =
  Arg.(
    value & opt int 1
    & info [ "parallel" ] ~docv:"N"
        ~doc:
          "Evaluate scan-shaped work on $(docv) domains within a \
           statement. Across sessions, reads run concurrently on MVCC \
           snapshots; only the single-writer commit path serializes.")

let drain_arg =
  Arg.(
    value & opt float 5.0
    & info [ "drain-timeout" ] ~docv:"SECS"
        ~doc:
          "On SIGTERM/SIGINT, wait up to $(docv) seconds for live \
           sessions to finish before forcing their sockets shut.")

let cmd =
  Cmd.v
    (Cmd.info "xqdbd"
       ~doc:"XML database network server (Xnet wire protocol)")
    Term.(
      const main $ listen_arg $ metrics_arg $ data_dir_arg $ no_fsync_arg
      $ max_sessions_arg $ parallel_arg $ drain_arg)

let () = exit (Cmd.eval cmd)
