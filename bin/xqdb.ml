(** xqdb — interactive shell for the XML database.

    Accepts SQL/XML statements and stand-alone XQuery, prints results,
    EXPLAIN traces and advisor output.

    Meta commands:
    - [\q] quit
    - [\explain on|off]   print plan notes after each statement
    - [\indexes off|on]   disable/enable index usage
    - [\limits ...]       show / set resource budgets (see ROBUSTNESS.md)
    - [\advise <query>]   run the Tips 1-12 advisor
    - [\lint <query>]     run the full static analyzer (docs/LINTING.md)
    - [\strict on|off]    reject statically ill-typed statements
    - [\profile on|off]   print an EXPLAIN-ANALYZE-style execution profile
                          (operator tree + counters) after each statement
    - [\metrics]          session-lifetime metrics accumulated while
                          profiling is on (docs/OBSERVABILITY.md)
    - [\xsan]             lock-order report: observed lock acquisition
                          orderings and any potential-deadlock cycles
                          (docs/CONCURRENCY.md)
    - [\prepare N S]      compile statement S under name N (SQL [?] and
                          XQuery free [$var]s become parameter slots)
    - [\exec N ARGS]      execute prepared N; ARGS are positional values
                          for SQL, [var=value] pairs for XQuery
    - [\cursor K S]       stream at most K results of S through a cursor,
                          then close it (unpulled results never compute)
    - [\begin [read]]     open an explicit transaction (read-write by
                          default, read-only with [read]); statements run
                          inside it until [\commit] or [\rollback]
                          (docs/TRANSACTIONS.md)
    - [\commit]           publish the open transaction atomically
    - [\rollback]         discard it — rows and index entries revert
    - [\cache]            plan-cache statistics
    - [\tables] [\idx]    catalog listings
    - [\checkpoint]       durable mode: snapshot the catalog and truncate
                          the WAL (docs/DURABILITY.md)
    - [\demo]             load a small orders/customer/products demo db

    With [--data-dir DIR] the session is durable: every mutating
    statement is written ahead to DIR's log before it commits, and
    reopening the directory recovers committed data after a crash.

    With [--connect HOST:PORT] the shell runs against a remote [xqdbd]
    over the Xnet wire protocol instead of embedding an engine;
    statements, [\prepare]/[\exec], [\cursor], [\limits], [\metrics] and
    [\checkpoint] execute server-side (docs/SERVER.md).

    Batch linting: [xqdb --lint FILE...] analyzes each file (one
    statement per file) and exits non-zero if any Error-severity
    diagnostic is found; [--json] switches to machine-readable output. *)

let explain = ref false

(** With [--profile --json], per-statement profiles are emitted as one
    JSON object per statement instead of the text report. *)
let profile_json = ref false

let maybe_print_profile db =
  if Engine.profiling db then begin
    let p = Engine.profile db in
    if !profile_json then
      print_endline (Xprof.Json.to_string (Xprof.to_json p))
    else print_string (Xprof.report p)
  end

(** Merge whitespace-separated [steps=N nodes=N depth=N timeout=SECS]
    assignments into [cur] (shared by the local and remote [\limits]). *)
let limits_of_args (cur : Xdm.Limits.t) (args : string) : Xdm.Limits.t =
  let l = ref cur in
  String.split_on_char ' ' args
  |> List.filter (fun s -> s <> "")
  |> List.iter (fun kv ->
         match String.index_opt kv '=' with
         | None -> Printf.printf "bad \\limits argument %S (want key=value)\n" kv
         | Some i -> (
             let k = String.sub kv 0 i in
             let v = String.sub kv (i + 1) (String.length kv - i - 1) in
             match (k, int_of_string_opt v, float_of_string_opt v) with
             | "steps", Some n, _ -> l := { !l with Xdm.Limits.max_steps = Some n }
             | "nodes", Some n, _ -> l := { !l with Xdm.Limits.max_nodes = Some n }
             | "depth", Some n, _ -> l := { !l with Xdm.Limits.max_depth = Some n }
             | "timeout", _, Some s -> l := { !l with Xdm.Limits.timeout = Some s }
             | _ ->
                 Printf.printf
                   "bad \\limits argument %S (want steps=N nodes=N depth=N \
                    timeout=SECS)\n"
                   kv));
  !l

(** [\limits] — bare: show; [off]: clear; otherwise assignments merged
    into the current limits. *)
let set_limits_cmd db (args : string) =
  let args = String.trim args in
  if args = "" then
    print_endline (Xdm.Limits.to_string (Engine.limits db))
  else if args = "off" then begin
    Engine.set_limits db Xdm.Limits.unlimited;
    print_endline "limits cleared"
  end
  else begin
    Engine.set_limits db (limits_of_args (Engine.limits db) args);
    print_endline (Xdm.Limits.to_string (Engine.limits db))
  end

(* Prepared statements of this shell session, by user-chosen name. *)
let prepared : (string, Engine.stmt) Hashtbl.t = Hashtbl.create 8

(* The shell's open explicit transaction, if any: every statement,
   [\exec] and [\cursor] runs inside it until \commit/\rollback. *)
let current_txn : Engine.Txn.txn option ref = ref None

let txn_begin_cmd db (arg : string) =
  match (!current_txn, String.trim arg) with
  | Some _, _ ->
      print_endline
        "a transaction is already open (\\commit or \\rollback it first)"
  | None, "" ->
      current_txn := Some (Engine.Txn.begin_ db);
      print_endline "BEGIN (read-write)"
  | None, "read" ->
      current_txn := Some (Engine.Txn.begin_ ~mode:Engine.Txn.Read_only db);
      print_endline "BEGIN (read-only)"
  | None, a -> Printf.printf "bad \\begin argument %S (usage: \\begin [read])\n" a

let txn_end_cmd ~commit =
  match !current_txn with
  | None -> print_endline "no transaction is open (use \\begin)"
  | Some tx ->
      current_txn := None;
      if commit then begin
        Engine.Txn.commit tx;
        print_endline "COMMIT"
      end
      else begin
        Engine.Txn.rollback tx;
        print_endline "ROLLBACK"
      end

(** Split [\exec] arguments on whitespace; single quotes group (and stay
    in the token, so the value parsers can see them). *)
let split_args (s : string) : string list =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush_tok () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let in_quote = ref false in
  String.iter
    (fun c ->
      if !in_quote then begin
        Buffer.add_char buf c;
        if c = '\'' then in_quote := false
      end
      else if c = ' ' || c = '\t' then flush_tok ()
      else begin
        Buffer.add_char buf c;
        if c = '\'' then in_quote := true
      end)
    s;
  flush_tok ();
  List.rev !out

let is_ident s =
  s <> ""
  && String.for_all
       (fun c ->
         ('a' <= c && c <= 'z')
         || ('A' <= c && c <= 'Z')
         || ('0' <= c && c <= '9')
         || c = '_')
       s

(** Sort [\exec] arguments into positional SQL values and named XQuery
    bindings: a [name=value] token (identifier before the [=]) binds a
    variable, anything else is positional. *)
let parse_bindings (toks : string list) :
    Storage.Sql_value.t list * (string * Xdm.Item.seq) list =
  List.partition_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i when i > 0 && is_ident (String.sub tok 0 i) ->
          let v = String.sub tok (i + 1) (String.length tok - i - 1) in
          Right
            (String.sub tok 0 i, [ Xdm.Item.A (Engine.atomic_of_string v) ])
      | _ -> Left (Engine.sql_value_of_string tok))
    toks

let print_outcome db (out : Engine.outcome) =
  (match out.Engine.payload with
  | Engine.Rows { cols; rows } ->
      if cols <> [] then print_endline (String.concat " | " cols);
      List.iter
        (fun row ->
          print_endline
            (String.concat " | " (List.map Storage.Sql_value.to_display row)))
        rows;
      Printf.printf "(%d rows)\n" (List.length rows)
  | Engine.Items items ->
      List.iter (fun it -> print_endline (Engine.to_xml [ it ])) items;
      Printf.printf "(%d items)\n" (List.length items));
  if !explain then begin
    List.iter (fun n -> Printf.printf "-- %s\n" n) out.Engine.notes;
    List.iter (fun n -> Printf.printf "-- %s\n" n) out.Engine.diagnostics
  end;
  maybe_print_profile db

let prepare_cmd db (args : string) =
  let args = String.trim args in
  match String.index_opt args ' ' with
  | None -> print_endline "usage: \\prepare NAME STATEMENT"
  | Some i ->
      let name = String.sub args 0 i in
      let src = String.trim (String.sub args (i + 1) (String.length args - i - 1)) in
      let st = Engine.prepare db src in
      Hashtbl.replace prepared name st;
      (match Engine.stmt_params st with
      | [] -> Printf.printf "prepared %s (no parameters)\n" name
      | ps ->
          Printf.printf "prepared %s (parameters: %s)\n" name
            (String.concat ", " ps))

let exec_cmd db (args : string) =
  let args = String.trim args in
  let name, rest =
    match String.index_opt args ' ' with
    | None -> (args, "")
    | Some i ->
        ( String.sub args 0 i,
          String.sub args (i + 1) (String.length args - i - 1) )
  in
  match Hashtbl.find_opt prepared name with
  | None -> Printf.printf "no prepared statement %S (use \\prepare)\n" name
  | Some st ->
      let params, vars = parse_bindings (split_args rest) in
      print_outcome db (Engine.execute ?txn:!current_txn ~params ~vars st)

let cursor_cmd db (args : string) =
  let args = String.trim args in
  let usage () = print_endline "usage: \\cursor COUNT STATEMENT" in
  match String.index_opt args ' ' with
  | None -> usage ()
  | Some i -> (
      match int_of_string_opt (String.sub args 0 i) with
      | None -> usage ()
      | Some n ->
          let src =
            String.trim (String.sub args (i + 1) (String.length args - i - 1))
          in
          let cur = Engine.open_cursor ?txn:!current_txn db src in
          Fun.protect
            ~finally:(fun () -> Engine.Cursor.close cur)
            (fun () ->
              if Engine.Cursor.columns cur <> [] then
                print_endline (String.concat " | " (Engine.Cursor.columns cur));
              let rec pull k =
                if k < n then
                  match Engine.Cursor.next cur with
                  | None -> ()
                  | Some (Engine.Cursor.Row row) ->
                      print_endline
                        (String.concat " | "
                           (List.map Storage.Sql_value.to_display row));
                      pull (k + 1)
                  | Some (Engine.Cursor.Item it) ->
                      print_endline (Engine.to_xml [ it ]);
                      pull (k + 1)
              in
              pull 0;
              Printf.printf "(%d pulled; cursor closed)\n"
                (Engine.Cursor.row_count cur)))

let cache_cmd db =
  let s = Engine.plan_cache_stats db in
  Printf.printf
    "plan cache: %d/%d entries, %d hits, %d misses, %d invalidations, %d \
     evictions\n"
    s.Engine.Plan_cache.size s.Engine.Plan_cache.capacity
    s.Engine.Plan_cache.hits s.Engine.Plan_cache.misses
    s.Engine.Plan_cache.invalidations s.Engine.Plan_cache.evictions

let load_demo db =
  ignore (Engine.exec db "CREATE TABLE orders (ordid integer, orddoc XML)");
  ignore (Engine.exec db "CREATE TABLE customer (cid integer, cdoc XML)");
  ignore
    (Engine.exec db "CREATE TABLE products (id varchar(13), name varchar(32))");
  let p = { Workload.Orders_gen.default with n_customers = 50; n_products = 40 } in
  Engine.load_documents db ~table:"orders" ~column:"orddoc"
    (Workload.Orders_gen.orders p 500);
  Engine.load_documents db ~table:"customer" ~column:"cdoc"
    (Workload.Orders_gen.customers p);
  List.iter
    (fun (id, name) ->
      ignore
        (Engine.exec db
           (Printf.sprintf "INSERT INTO products VALUES ('%s', '%s')" id name)))
    (Workload.Orders_gen.products p);
  print_endline
    "demo loaded: orders(500 docs), customer(50 docs), products(40 rows)"

let exec_one db (line : string) =
  let line = String.trim line in
  if line = "" then ()
  else if line = "\\q" then raise Exit
  else if line = "\\demo" then load_demo db
  else if line = "\\explain on" then explain := true
  else if line = "\\explain off" then explain := false
  else if line = "\\indexes off" then Engine.set_use_indexes db false
  else if line = "\\indexes on" then Engine.set_use_indexes db true
  else if line = "\\limits" then set_limits_cmd db ""
  else if String.length line > 8 && String.sub line 0 8 = "\\limits " then
    set_limits_cmd db (String.sub line 8 (String.length line - 8))
  else if line = "\\parallel" then
    Printf.printf "parallelism: %d (backend: %s)\n" (Engine.parallelism db)
      Xpar.backend
  else if String.length line > 10 && String.sub line 0 10 = "\\parallel " then begin
    let arg = String.trim (String.sub line 10 (String.length line - 10)) in
    match int_of_string_opt arg with
    | Some n when n >= 1 ->
        Engine.set_parallelism db n;
        Printf.printf "parallelism: %d (backend: %s)\n" (Engine.parallelism db)
          Xpar.backend
    | _ ->
        print_endline
          "bad \\parallel argument; usage: \\parallel N (N >= 1)"
  end
  else if line = "\\tables" then
    List.iter
      (fun (t : Storage.Table.t) ->
        Printf.printf "%s (%d rows): %s\n" t.Storage.Table.name
          (Storage.Table.row_count t)
          (String.concat ", "
             (List.map
                (fun (c : Storage.Table.col_def) ->
                  c.Storage.Table.col_name ^ " "
                  ^ Storage.Sql_value.type_name c.Storage.Table.col_type)
                t.Storage.Table.cols)))
      (Storage.Database.tables (Engine.database db))
  else if line = "\\idx" then begin
    List.iter
      (fun (i : Xmlindex.Xindex.t) ->
        Printf.printf "%s ON %s(%s) XMLPATTERN %s AS %s (%d entries)\n"
          i.Xmlindex.Xindex.def.Xmlindex.Xindex.iname
          i.Xmlindex.Xindex.def.Xmlindex.Xindex.table
          i.Xmlindex.Xindex.def.Xmlindex.Xindex.column
          (Xmlindex.Pattern.to_string i.Xmlindex.Xindex.def.Xmlindex.Xindex.pattern)
          (Xmlindex.Xindex.vtype_to_string
             i.Xmlindex.Xindex.def.Xmlindex.Xindex.vtype)
          (Xmlindex.Xindex.entry_count i))
      (Engine.xml_indexes db);
    List.iter
      (fun (i : Xmlindex.Rel_index.t) ->
        Printf.printf "%s ON %s(%s) relational (%d entries)\n"
          i.Xmlindex.Rel_index.iname i.Xmlindex.Rel_index.table
          i.Xmlindex.Rel_index.column
          (Xmlindex.Rel_index.entry_count i))
      (Engine.rel_indexes db);
    List.iter
      (fun (i : Xmlindex.Structindex.t) ->
        let d = i.Xmlindex.Structindex.def in
        Printf.printf "%s ON %s(%s) structural (%d docs, %d nodes)\n"
          d.Xmlindex.Structindex.iname d.Xmlindex.Structindex.table
          d.Xmlindex.Structindex.column
          (Xmlindex.Structindex.doc_count i)
          (Xmlindex.Structindex.node_count i))
      (Engine.struct_indexes db)
  end
  else if String.length line > 8 && String.sub line 0 8 = "\\advise " then begin
    let q = String.sub line 8 (String.length line - 8) in
    match Engine.advise db q with
    | [] -> print_endline "no advice: the query follows the guidelines"
    | advs -> List.iter (fun a -> print_endline (Engine.Advisor.to_string a)) advs
  end
  else if line = "\\strict on" then Engine.set_strict_types db true
  else if line = "\\strict off" then Engine.set_strict_types db false
  else if line = "\\profile on" then Engine.set_profiling db true
  else if line = "\\profile off" then Engine.set_profiling db false
  else if line = "\\metrics" then begin
    Engine.refresh_lock_metrics db;
    print_string (Xprof.Registry.to_string (Engine.registry db));
    cache_cmd db
  end
  else if line = "\\begin" then txn_begin_cmd db ""
  else if String.length line > 7 && String.sub line 0 7 = "\\begin " then
    txn_begin_cmd db (String.sub line 7 (String.length line - 7))
  else if line = "\\commit" then txn_end_cmd ~commit:true
  else if line = "\\rollback" then txn_end_cmd ~commit:false
  else if line = "\\xsan" then print_string (Xpar.Lockorder.report ())
  else if line = "\\cache" then cache_cmd db
  else if line = "\\checkpoint" then (
    match Engine.data_dir db with
    | None -> print_endline "in-memory session: nothing to checkpoint"
    | Some dir ->
        Engine.checkpoint db;
        Printf.printf "checkpoint written (%s)\n" dir)
  else if String.length line > 9 && String.sub line 0 9 = "\\prepare " then
    prepare_cmd db (String.sub line 9 (String.length line - 9))
  else if String.length line > 6 && String.sub line 0 6 = "\\exec " then
    exec_cmd db (String.sub line 6 (String.length line - 6))
  else if String.length line > 8 && String.sub line 0 8 = "\\cursor " then
    cursor_cmd db (String.sub line 8 (String.length line - 8))
  else if String.length line > 6 && String.sub line 0 6 = "\\lint " then begin
    let q = String.sub line 6 (String.length line - 6) in
    match List.sort Analysis.Diag.compare (Engine.analyze db q) with
    | [] -> print_endline "no findings"
    | ds -> List.iter (fun d -> print_endline (Analysis.Diag.to_string ~src:q d)) ds
  end
  else
    (* The sealed entry point auto-detects SQL vs stand-alone XQuery,
       goes through the plan cache (repeated statements compile once) and
       applies the strict-mode static gate at compile time. *)
    print_outcome db (Engine.exec ?txn:!current_txn db line)

(** Report any statement failure without killing the session. The final
    catch-all matters: a statement that parses as SQL but dies on an
    exception no handler names must not take the shell down with it. *)
let report_error = function
  | Xdm.Xerror.Error { code; msg } -> Printf.printf "ERROR [%s] %s\n" code msg
  | Sqlxml.Sql_exec.Sql_runtime_error m -> Printf.printf "SQL ERROR: %s\n" m
  | Sqlxml.Sql_lexer.Sql_syntax_error m -> Printf.printf "SYNTAX ERROR: %s\n" m
  | Xmlparse.Xml_parser.Xml_error { pos; msg } ->
      Printf.printf "XML ERROR at offset %d: %s\n" pos msg
  | Faultinject.Injected { point; msg } ->
      Printf.printf "FAULT [%s] %s (statement rolled back)\n" point msg
  | Failure m -> Printf.printf "ERROR: %s\n" m
  | e -> Printf.printf "UNEXPECTED ERROR: %s\n" (Printexc.to_string e)

let exec_line db line =
  try exec_one db line with
  | Exit -> raise Exit
  | e -> report_error e

(* ------------------------------------------------------------------ *)
(* Remote mode: --connect HOST:PORT speaks the Xnet wire protocol to a
   running xqdbd instead of embedding an engine. The same meta-command
   surface where it makes sense remotely: statements, \prepare, \exec,
   \cursor, \limits, \metrics, \checkpoint, \begin/\commit/\rollback
   (the server holds the transaction), \explain, \q. Values travel
   as literal strings and are parsed server-side with the same rules as
   the local \exec.                                                    *)
(* ------------------------------------------------------------------ *)

(** Like {!parse_bindings} but keeping the literal strings: the server
    does the parsing. *)
let parse_raw_bindings (toks : string list) : Xnet.Proto.bindings =
  let params, vars =
    List.partition_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i when i > 0 && is_ident (String.sub tok 0 i) ->
            Either.Right
              ( String.sub tok 0 i,
                String.sub tok (i + 1) (String.length tok - i - 1) )
        | _ -> Either.Left tok)
      toks
  in
  { Xnet.Proto.params; vars }

let print_remote_okay (o : Xnet.Client.okay) =
  (match o.Xnet.Client.payload with
  | Xnet.Proto.Wrows { cols; rows } ->
      if cols <> [] then print_endline (String.concat " | " cols);
      List.iter (fun row -> print_endline (String.concat " | " row)) rows;
      Printf.printf "(%d rows)\n" (List.length rows)
  | Xnet.Proto.Witems items ->
      List.iter print_endline items;
      Printf.printf "(%d items)\n" (List.length items));
  if !explain then begin
    List.iter (fun n -> Printf.printf "-- %s\n" n) o.Xnet.Client.notes;
    List.iter (fun n -> Printf.printf "-- %s\n" n) o.Xnet.Client.diagnostics
  end

(* The server enforces limits per session; the client only needs the
   current value to support incremental \limits merges. *)
let remote_limits = ref Xdm.Limits.unlimited

let remote_limits_cmd conn (args : string) =
  let args = String.trim args in
  if args = "" then print_endline (Xdm.Limits.to_string !remote_limits)
  else begin
    (if args = "off" then remote_limits := Xdm.Limits.unlimited
     else remote_limits := limits_of_args !remote_limits args);
    Xnet.Client.set_limits conn !remote_limits;
    print_endline (Xdm.Limits.to_string !remote_limits)
  end

let remote_prepare_cmd conn (args : string) =
  let args = String.trim args in
  match String.index_opt args ' ' with
  | None -> print_endline "usage: \\prepare NAME STATEMENT"
  | Some i ->
      let name = String.sub args 0 i in
      let src =
        String.trim (String.sub args (i + 1) (String.length args - i - 1))
      in
      (match Xnet.Client.prepare conn ~name src with
      | [] -> Printf.printf "prepared %s (no parameters)\n" name
      | ps ->
          Printf.printf "prepared %s (parameters: %s)\n" name
            (String.concat ", " ps))

let remote_exec_cmd conn (args : string) =
  let args = String.trim args in
  let name, rest =
    match String.index_opt args ' ' with
    | None -> (args, "")
    | Some i ->
        ( String.sub args 0 i,
          String.sub args (i + 1) (String.length args - i - 1) )
  in
  let b = parse_raw_bindings (split_args rest) in
  print_remote_okay (Xnet.Client.execute ~b conn name)

let remote_cursor_cmd conn (args : string) =
  let args = String.trim args in
  let usage () = print_endline "usage: \\cursor COUNT STATEMENT" in
  match String.index_opt args ' ' with
  | None -> usage ()
  | Some i -> (
      match int_of_string_opt (String.sub args 0 i) with
      | None -> usage ()
      | Some n ->
          let src =
            String.trim (String.sub args (i + 1) (String.length args - i - 1))
          in
          let cursor, cols = Xnet.Client.open_cursor conn src in
          if cols <> [] then print_endline (String.concat " | " cols);
          let elems, finished = Xnet.Client.fetch conn ~cursor ~max:n in
          List.iter
            (function
              | Xnet.Proto.Brow row ->
                  print_endline (String.concat " | " row)
              | Xnet.Proto.Bitem xml -> print_endline xml)
            elems;
          if not finished then Xnet.Client.close_cursor conn cursor;
          Printf.printf "(%d pulled; cursor closed)\n" (List.length elems))

let remote_exec_one conn (line : string) =
  let line = String.trim line in
  let has_prefix p =
    String.length line > String.length p
    && String.sub line 0 (String.length p) = p
  in
  let after p =
    String.sub line (String.length p) (String.length line - String.length p)
  in
  if line = "" then ()
  else if line = "\\q" then raise Exit
  else if line = "\\explain on" then explain := true
  else if line = "\\explain off" then explain := false
  else if line = "\\limits" then remote_limits_cmd conn ""
  else if has_prefix "\\limits " then remote_limits_cmd conn (after "\\limits ")
  else if line = "\\begin" then begin
    Xnet.Client.txn_begin conn;
    print_endline "BEGIN (read-write)"
  end
  else if line = "\\begin read" then begin
    Xnet.Client.txn_begin ~mode:Xnet.Proto.Read_only conn;
    print_endline "BEGIN (read-only)"
  end
  else if line = "\\commit" then begin
    Xnet.Client.txn_commit conn;
    print_endline "COMMIT"
  end
  else if line = "\\rollback" then begin
    Xnet.Client.txn_rollback conn;
    print_endline "ROLLBACK"
  end
  else if line = "\\metrics" then print_string (Xnet.Client.stats conn)
  else if line = "\\checkpoint" then begin
    Xnet.Client.checkpoint conn;
    print_endline "checkpoint requested"
  end
  else if has_prefix "\\prepare " then remote_prepare_cmd conn (after "\\prepare ")
  else if has_prefix "\\exec " then remote_exec_cmd conn (after "\\exec ")
  else if has_prefix "\\cursor " then remote_cursor_cmd conn (after "\\cursor ")
  else if String.length line > 0 && line.[0] = '\\' then
    Printf.printf "meta command not available over --connect: %s\n" line
  else print_remote_okay (Xnet.Client.exec conn line)

let remote_exec_line conn line =
  try remote_exec_one conn line with
  | Exit -> raise Exit
  | Xnet.Client.Net_error m ->
      Printf.printf "CONNECTION ERROR: %s\n" m;
      raise Exit
  | e -> report_error e

let remote_main (hostport : string) (script : string option) : unit =
  let host, port =
    match String.rindex_opt hostport ':' with
    | Some i -> (
        let h = String.sub hostport 0 i in
        let p = String.sub hostport (i + 1) (String.length hostport - i - 1) in
        match int_of_string_opt p with
        | Some p -> ((if h = "" then "127.0.0.1" else h), p)
        | None -> failwith (Printf.sprintf "bad --connect address %S" hostport))
    | None -> failwith (Printf.sprintf "bad --connect address %S (want HOST:PORT)" hostport)
  in
  let conn = Xnet.Client.connect ~user:(Sys.getenv_opt "USER" |> Option.value ~default:"anon") ~host ~port () in
  Printf.printf "connected to %s (session %d)\n"
    (Xnet.Client.server conn) (Xnet.Client.session conn);
  Fun.protect
    ~finally:(fun () -> Xnet.Client.close conn)
    (fun () ->
      match script with
      | Some f ->
          In_channel.with_open_text f (fun ic ->
              try
                while true do
                  match In_channel.input_line ic with
                  | None -> raise Exit
                  | Some line -> remote_exec_line conn line
                done
              with Exit -> ())
      | None ->
          (try
             while true do
               print_string "xqdb> ";
               flush stdout;
               match In_channel.input_line stdin with
               | None -> raise Exit
               | Some line -> remote_exec_line conn line
             done
           with Exit | End_of_file -> ());
          print_endline "bye")

let repl db =
  (try
     while true do
       print_string "xqdb> ";
       flush stdout;
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line -> exec_line db line
     done
   with Exit | End_of_file -> ());
  print_endline "bye"

open Cmdliner

let script =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Execute statements from $(docv) (one per line), then exit.")

let demo =
  Arg.(value & flag & info [ "demo" ] ~doc:"Preload the demo database.")

let parallel =
  Arg.(
    value & opt int 1
    & info [ "parallel" ] ~docv:"N"
        ~doc:
          "Evaluate scan-shaped work (collection scans, multi-index \
           AND/OR, bulk loads) on $(docv) domains. Results are \
           deterministic at any level. On OCaml 4.x builds the value is \
           accepted but execution stays sequential.")

let do_explain =
  Arg.(value & flag & info [ "explain" ] ~doc:"Print plan notes after each statement.")

let lint_files =
  Arg.(
    value
    & opt_all file []
    & info [ "lint" ] ~docv:"FILE"
        ~doc:
          "Run the static analyzer on $(docv) (one statement per file) and \
           exit. Repeatable. Exit status 1 if any Error-severity \
           diagnostic is reported.")

let json_out =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "With $(b,--lint): emit diagnostics as JSON. With \
           $(b,--profile): emit one JSON profile object per statement.")

let data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Open (or create) a durable database in $(docv): statements are \
           written ahead to a log and survive crashes; reopening the \
           directory runs recovery. Without this flag the session is \
           in-memory. See docs/DURABILITY.md.")

let no_fsync =
  Arg.(
    value & flag
    & info [ "no-fsync" ]
        ~doc:
          "With $(b,--data-dir): skip the per-commit fsync (still durable \
           against process crashes, not against power loss).")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:
          "Remote mode: connect to a running $(b,xqdbd) over the Xnet \
           wire protocol instead of embedding an engine. Statements, \
           \\\\prepare/\\\\exec, \\\\cursor, \\\\limits, \\\\metrics and \
           \\\\checkpoint run server-side; engine flags like \
           $(b,--data-dir) and $(b,--parallel) are the server's business \
           and are rejected here. See docs/SERVER.md.")

let profile_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Execute statements from $(docv) (one per line) with profiling \
           on, printing an execution profile after each statement, then \
           exit. Combine with $(b,--json) for machine-readable output.")

(** [--lint FILE...]: analyze each file as one statement; human output
    shows caret snippets, [--json] emits one JSON object per file. *)
let lint_main db (files : string list) (json : bool) : int =
  let failed = ref false in
  List.iter
    (fun f ->
      let src = String.trim (In_channel.with_open_text f In_channel.input_all) in
      let ds = List.sort Analysis.Diag.compare (Engine.analyze db src) in
      if List.exists Analysis.Diag.is_error ds then failed := true;
      if json then
        Printf.printf "{\"file\":\"%s\",\"diagnostics\":%s}\n"
          (Analysis.Diag.json_escape f)
          (Analysis.Diag.list_to_json ds)
      else begin
        Printf.printf "== %s\n" f;
        if ds = [] then print_endline "no findings"
        else
          List.iter
            (fun d -> print_endline (Analysis.Diag.to_string ~src d))
            ds
      end)
    files;
  if !failed then 1 else 0

let run_file db f =
  In_channel.with_open_text f (fun ic ->
      try
        while true do
          match In_channel.input_line ic with
          | None -> raise Exit
          | Some line -> exec_line db line
        done
      with Exit -> ())

let main script demo parallel do_explain lint json profile data_dir no_fsync
    connect =
  match connect with
  | Some hostport ->
      explain := do_explain;
      if demo || parallel > 1 || lint <> [] || profile <> None
         || data_dir <> None || no_fsync
      then begin
        prerr_endline
          "xqdb: --connect is incompatible with --demo/--parallel/--lint/\
           --profile/--data-dir/--no-fsync (those belong to the server)";
        exit 2
      end;
      (try remote_main hostport script with
      | Failure m ->
          prerr_endline ("xqdb: " ^ m);
          exit 2
      | Xnet.Client.Net_error m ->
          prerr_endline ("xqdb: " ^ m);
          exit 1
      | Xdm.Xerror.Error { code; msg } ->
          Printf.eprintf "xqdb: ERROR [%s] %s\n" code msg;
          exit 1)
  | None ->
  let db =
    match data_dir with
    | None -> Engine.create ()
    | Some dir -> Engine.open_db ~sync:(not no_fsync) ~data_dir:dir ()
  in
  explain := do_explain;
  if parallel > 1 then Engine.set_parallelism db parallel;
  if demo then load_demo db;
  if lint <> [] then exit (lint_main db lint json);
  Fun.protect
    ~finally:(fun () ->
      (* a transaction left open at exit is rolled back, like a dropped
         server session *)
      (match !current_txn with
      | Some tx -> ( try Engine.Txn.rollback tx with _ -> ())
      | None -> ());
      Engine.close db)
    (fun () ->
      match (profile, script) with
      | Some f, _ ->
          Engine.set_profiling db true;
          profile_json := json;
          run_file db f
      | None, Some f -> run_file db f
      | None, None -> repl db)

let cmd =
  Cmd.v
    (Cmd.info "xqdb" ~doc:"XML database shell (XQuery + SQL/XML + XML indexes)")
    Term.(
      const main $ script $ demo $ parallel $ do_explain $ lint_files
      $ json_out $ profile_file $ data_dir_arg $ no_fsync $ connect_arg)

let () = exit (Cmd.eval cmd)
