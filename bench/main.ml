(** Benchmark harness: one experiment per pitfall area of the paper
    (see DESIGN.md §3 for the experiment index E1–E15).

    The paper has no numbered tables or figures; each of its ten pitfall
    sections makes a qualitative performance claim — "the eligible
    formulation uses the index and wins, the seemingly-identical one scans
    the collection". Every experiment below reproduces one claim: it runs
    the paper's query pair(s) via Bechamel (one [Test.make] per variant),
    prints the measured time per execution, the result cardinality, which
    indexes the planner chose, and the speedup of the eligible variant.

    Absolute numbers are ours (an in-memory OCaml engine, not DB2 on 2006
    hardware); the *shape* — who wins, by what factor, where the
    crossovers are — is the reproduction target. Results are recorded in
    EXPERIMENTS.md. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)
(* ------------------------------------------------------------------ *)

(** Nanoseconds per run of [fn], measured with Bechamel (monotonic clock,
    OLS over run counts). *)
let measure_ns ?(quota = 0.5) name (fn : unit -> unit) : float =
  let test = Test.make ~name (Staged.stage fn) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with Some [ e ] -> e | _ -> acc)
    results Float.nan

let pretty_ns ns =
  if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.0f ns" ns

type variant = {
  vname : string;
  run : unit -> int;  (** returns a result cardinality *)
  note : string;  (** indexes used / semantics remark *)
}

let experiment ~id ~claim (variants : variant list) =
  Printf.printf "\n%s — %s\n" id claim;
  Printf.printf "  %-44s %12s %8s  %-30s %s\n" "variant" "time/exec"
    "results" "indexes/remark" "speedup";
  let base = ref None in
  List.iter
    (fun v ->
      let n = v.run () in
      let ns = measure_ns v.vname (fun () -> ignore (v.run ())) in
      let speedup =
        match !base with
        | None ->
            base := Some ns;
            "1.0x (baseline)"
        | Some b -> Printf.sprintf "%.1fx" (b /. ns)
      in
      Printf.printf "  %-44s %12s %8d  %-30s %s\n" v.vname (pretty_ns ns) n
        v.note speedup)
    variants;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Shared databases                                                    *)
(* ------------------------------------------------------------------ *)

let n_docs = 4000

let build_db ?(n = n_docs) ?(params = Workload.Orders_gen.default) () =
  let db = Engine.create () in
  ignore (Engine.exec db "CREATE TABLE orders (ordid INTEGER, orddoc XML)");
  ignore (Engine.exec db "CREATE TABLE customer (cid INTEGER, cdoc XML)");
  ignore
    (Engine.exec db "CREATE TABLE products (id VARCHAR(13), name VARCHAR(32))");
  let p =
    { params with Workload.Orders_gen.n_customers = 200; n_products = 300 }
  in
  Engine.load_documents db ~table:"orders" ~column:"orddoc"
    (Workload.Orders_gen.orders p n);
  Engine.load_documents db ~table:"customer" ~column:"cdoc"
    (Workload.Orders_gen.customers p);
  List.iter
    (fun (id, name) ->
      ignore
        (Engine.exec db
           (Printf.sprintf "INSERT INTO products VALUES ('%s', '%s')" id name)))
    (Workload.Orders_gen.products p);
  db

let ddl db stmts = List.iter (fun s -> ignore (Engine.exec db s)) stmts

let xq_n db src () = List.length (Engine.outcome_items (Engine.exec db src))
let xq_noidx_n db src () =
  let saved = Engine.use_indexes db in
  Engine.set_use_indexes db false;
  Fun.protect
    ~finally:(fun () -> Engine.set_use_indexes db saved)
    (fun () -> List.length (Engine.outcome_items (Engine.exec db src)))
let sql_n db src () = List.length (Engine.outcome_rows (Engine.exec db src))

(* ------------------------------------------------------------------ *)
(* E1 — index eligibility (§2.2, Queries 1/2)                          *)
(* ------------------------------------------------------------------ *)

let e1 () =
  let db = build_db () in
  ddl db
    [
      "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS DOUBLE";
    ];
  let q1 = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>990]" in
  let q2 = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>990]" in
  experiment ~id:"E1 (§2.2, Queries 1–2)"
    ~claim:
      "li_price is eligible for Query 1 (pattern ⊇ query) but not Query 2 \
       (@* is less restrictive than the index)"
    [
      { vname = "Query 1, collection scan"; run = xq_noidx_n db q1; note = "no index" };
      { vname = "Query 1, indexed"; run = xq_n db q1; note = "idx: li_price" };
      {
        vname = "Query 2 (@*), indexed plan = scan";
        run = xq_n db q2;
        note = "index rejected: containment";
      };
    ]

(* ------------------------------------------------------------------ *)
(* E2 — predicate data types (§3.1, Queries 3/4)                       *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let db = build_db () in
  ddl db
    [
      "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS DOUBLE";
      "CREATE INDEX li_price_v ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS VARCHAR(20)";
    ];
  let numeric = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>990]" in
  let stringp =
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \"990\"]"
  in
  experiment ~id:"E2 (§3.1, Query 3)"
    ~claim:
      "a quoted literal makes the predicate a *string* comparison: the \
       DOUBLE index is ineligible, a VARCHAR index serves it (with string \
       ordering!)"
    [
      { vname = "numeric predicate, scan"; run = xq_noidx_n db numeric; note = "no index" };
      { vname = "numeric predicate (DOUBLE index)"; run = xq_n db numeric; note = "idx: li_price" };
      {
        vname = "string predicate (VARCHAR index)";
        run = xq_n db stringp;
        note = "idx: li_price_v (different answer!)";
      };
    ]

(* ------------------------------------------------------------------ *)
(* E3 — SQL/XML query functions (§3.2, Queries 5–12)                   *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let db = build_db () in
  ddl db
    [
      "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS DOUBLE";
    ];
  let q5 =
    "SELECT XMLQuery('$o//lineitem[@price > 990]' passing orddoc as \"o\") \
     FROM orders"
  in
  let q8 =
    "SELECT ordid, orddoc FROM orders WHERE XMLExists('$o//lineitem[@price \
     > 990]' passing orddoc as \"o\")"
  in
  let q9 =
    "SELECT ordid, orddoc FROM orders WHERE XMLExists('$o//lineitem/@price \
     > 990' passing orddoc as \"o\")"
  in
  let q7 = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 990]" in
  let q11 =
    "SELECT o.ordid, t.li FROM orders o, XMLTable('$o//lineitem[@price > \
     990]' passing o.orddoc as \"o\" COLUMNS \"li\" XML BY REF PATH '.') \
     as t(li)"
  in
  experiment ~id:"E3 (§3.2, Queries 5–12)"
    ~claim:
      "XMLQuery in the select list cannot filter (all rows, no index); \
       XMLExists and the XMLTable row-producer can; a boolean inside \
       XMLExists silently selects everything"
    [
      { vname = "Query 5: XMLQuery select list"; run = sql_n db q5; note = "rows = all orders" };
      { vname = "Query 8: XMLExists"; run = sql_n db q8; note = "idx: li_price" };
      { vname = "Query 9: boolean XMLExists (trap)"; run = sql_n db q9; note = "rows = all orders" };
      { vname = "Query 7: stand-alone XQuery"; run = xq_n db q7; note = "idx: li_price" };
      { vname = "Query 11: XMLTable row-producer"; run = sql_n db q11; note = "idx: li_price" };
    ]

(* ------------------------------------------------------------------ *)
(* E4 — joins (§3.3, Queries 13–16)                                    *)
(* ------------------------------------------------------------------ *)

let e4 () =
  let db = build_db ~n:1500 () in
  ddl db
    [
      "CREATE INDEX li_pid ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/product/id' AS VARCHAR(20)";
      "CREATE INDEX c_custid ON customer(cdoc) USING XMLPATTERN \
       '/customer/id' AS DOUBLE";
    ];
  let q13 =
    "SELECT p.name FROM products p, orders o WHERE XMLExists('$o \
     //lineitem/product[id eq $pid]' passing o.orddoc as \"o\", p.id as \
     \"pid\")"
  in
  let q15 =
    "SELECT c.cid FROM orders o, customer c WHERE \
     XMLCast(XMLQuery('$o/order/custid' passing o.orddoc as \"o\") as \
     DOUBLE) = XMLCast(XMLQuery('$c/customer/id' passing c.cdoc as \"c\") \
     as DOUBLE)"
  in
  let q16 =
    "SELECT c.cid FROM orders o, customer c WHERE \
     XMLExists('$o/order[custid/xs:double(.) = \
     $c/customer/id/xs:double(.)]' passing o.orddoc as \"o\", c.cdoc as \
     \"c\")"
  in
  experiment ~id:"E4 (§3.3, Queries 13–16)"
    ~claim:
      "joins expressed in XQuery use XML indexes (nested-loop probes); \
       SQL-side joins through XMLCast use none"
    [
      { vname = "Query 15: SQL-side XML join"; run = sql_n db q15; note = "no index" };
      { vname = "Query 16: XQuery-side join + casts"; run = sql_n db q16; note = "idx: c_custid probes" };
      { vname = "Query 13: product join in XQuery"; run = sql_n db q13; note = "idx: li_pid probes" };
      (let db_plain = build_db ~n:1500 () in
       {
         vname = "Query 13 without li_pid (scan)";
         run = sql_n db_plain q13;
         note = "no index";
       });
    ]

(* ------------------------------------------------------------------ *)
(* E5 — let vs for (§3.4, Queries 17–22)                               *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let db = build_db () in
  ddl db
    [
      "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS DOUBLE";
    ];
  let q17 =
    "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') for $i in \
     $d//lineitem[@price > 990] return <result>{$i}</result>"
  in
  let q18 =
    "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') let $i := \
     $d//lineitem[@price > 990] return <result>{$i}</result>"
  in
  let q21 =
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order let $p := \
     $o/lineitem/@price where $p > 990 return <result>{$o/lineitem}</result>"
  in
  let q19 =
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
     <result>{$o/lineitem[@price > 990]}</result>"
  in
  let q22 =
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
     $o/lineitem[@price > 990]"
  in
  experiment ~id:"E5 (§3.4, Queries 17–22)"
    ~claim:
      "for-bindings and where-clauses filter (indexable); let-bindings and \
       constructor-wrapped predicates preserve empties (full scan, \
       different results)"
    [
      { vname = "Query 18: let (scan, 1 result/doc)"; run = xq_n db q18; note = "no index" };
      { vname = "Query 17: for"; run = xq_n db q17; note = "idx: li_price" };
      { vname = "Query 21: let + where"; run = xq_n db q21; note = "idx: li_price" };
      { vname = "Query 19: ctor in return (scan)"; run = xq_n db q19; note = "no index" };
      { vname = "Query 22: bare path in return"; run = xq_n db q22; note = "idx: li_price" };
    ]

(* ------------------------------------------------------------------ *)
(* E6 — document vs element nodes (§3.5): correctness capsule          *)
(* ------------------------------------------------------------------ *)

let e6 () =
  Printf.printf
    "\nE6 (§3.5, Queries 23–25) — document vs element context (semantics, \
     not speed)\n";
  let db = build_db ~n:50 () in
  let n23 = xq_n db "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem" () in
  Printf.printf "  Query 23: /order/lineitem from document nodes -> %d items\n"
    n23;
  let n24 =
    xq_n db
      "for $ord in (for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order \
       return <my_order>{$o/*}</my_order>) return $ord/my_order"
      ()
  in
  Printf.printf
    "  Query 24: $ord/my_order under constructed elements -> %d items \
     (empty: no extra doc level)\n"
    n24;
  (try
     ignore
       (xq_n db
          "let $order := <neworder>{db2-fn:xmlcolumn('ORDERS.ORDDOC') \
           /order}</neworder> return $order[//customer/name]"
          ())
   with Xdm.Xerror.Error e ->
     Printf.printf
       "  Query 25: absolute path under constructed element -> [%s] %s\n"
       e.code e.msg);
  flush stdout

(* ------------------------------------------------------------------ *)
(* E7 — construction barrier (§3.6, Queries 26/27)                     *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let db = build_db () in
  ddl db
    [
      "CREATE INDEX li_pid ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/product/id' AS VARCHAR(20)";
    ];
  let q26 =
    "let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
     /order/lineitem return <item quantity=\"{$i/quantity}\"> \
     <pid>{$i/product/id/data(.)}</pid></item> for $j in $view where \
     $j/pid = 'p3' return $j"
  in
  let q27 =
    "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem where \
     $i/product/id = 'p3' return $i/quantity"
  in
  experiment ~id:"E7 (§3.6, Queries 26–27)"
    ~claim:
      "predicates over a constructed view cannot be pushed down (fresh \
       node identities, untypedAtomic): the view query materializes \
       everything; the base-collection rewrite uses the index"
    [
      { vname = "Query 26: constructed view"; run = xq_n db q26; note = "no index, full materialize" };
      { vname = "Query 27: base collection"; run = xq_n db q27; note = "idx: li_pid" };
    ]

(* ------------------------------------------------------------------ *)
(* E8 — namespaces (§3.7, Query 28)                                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let db = Engine.create () in
  ignore (Engine.exec db "CREATE TABLE customer (cid INTEGER, cdoc XML)");
  let p =
    {
      Workload.Orders_gen.default with
      n_customers = n_docs;
      namespace = Some "http://ournamespaces.com/customer";
    }
  in
  Engine.load_documents db ~table:"customer" ~column:"cdoc"
    (Workload.Orders_gen.customers p);
  ddl db
    [
      "CREATE INDEX c_nation ON customer(cdoc) USING XMLPATTERN '//nation' \
       AS DOUBLE";
    ];
  let db2 = Engine.create () in
  ignore (Engine.exec db2 "CREATE TABLE customer (cid INTEGER, cdoc XML)");
  Engine.load_documents db2 ~table:"customer" ~column:"cdoc"
    (Workload.Orders_gen.customers p);
  ddl db2
    [
      "CREATE INDEX c_nation_ns2 ON customer(cdoc) USING XMLPATTERN \
       '//*:nation' AS DOUBLE";
    ];
  let q =
    "declare namespace c=\"http://ournamespaces.com/customer\"; \
     db2-fn:xmlcolumn('CUSTOMER.CDOC')/c:customer[c:nation = 1]"
  in
  experiment ~id:"E8 (§3.7, Query 28)"
    ~claim:
      "an index without namespace declarations only holds no-namespace \
       elements: ineligible for namespaced queries; the *:wildcard index \
       works"
    [
      {
        vname = "only ns-less c_nation = scan";
        run = xq_n db q;
        note = "c_nation rejected (ns)";
      };
      { vname = "with //*:nation wildcard index"; run = xq_n db2 q; note = "idx: c_nation_ns2" };
    ]

(* ------------------------------------------------------------------ *)
(* E9 — text() alignment (§3.8, Query 29)                              *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let db = Engine.create () in
  ignore (Engine.exec db "CREATE TABLE orders (ordid INTEGER, orddoc XML)");
  let p = { Workload.Orders_gen.default with string_price_frac = 0.3 } in
  Engine.load_documents db ~table:"orders" ~column:"orddoc"
    (Workload.Orders_gen.orders p n_docs);
  ddl db
    [
      "CREATE INDEX price_el ON orders(orddoc) USING XMLPATTERN '//price' \
       AS VARCHAR(30)";
    ];
  let db2 = Engine.create () in
  ignore (Engine.exec db2 "CREATE TABLE orders (ordid INTEGER, orddoc XML)");
  Engine.load_documents db2 ~table:"orders" ~column:"orddoc"
    (Workload.Orders_gen.orders p n_docs);
  ddl db2
    [
      "CREATE INDEX price_tx ON orders(orddoc) USING XMLPATTERN \
       '//price/text()' AS VARCHAR(30)";
    ];
  let q =
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/price/text() > \
     \"99\"]"
  in
  experiment ~id:"E9 (§3.8, Query 29)"
    ~claim:
      "a /text() query cannot use an element-value index (they disagree on \
       nodes like <price>99.50<currency>USD</currency></price>); it needs \
       a /text() index"
    [
      {
        vname = "only element index = scan";
        run = xq_n db q;
        note = "price_el rejected (text())";
      };
      { vname = "with //price/text() index"; run = xq_n db2 q; note = "idx: price_tx" };
    ]

(* ------------------------------------------------------------------ *)
(* E10 — attributes (§3.9, Tip 12)                                     *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let db = build_db () in
  ddl db
    [
      "CREATE INDEX broad_el ON orders(orddoc) USING XMLPATTERN '//*' AS \
       VARCHAR(50)";
    ];
  let db2 = build_db () in
  ddl db2
    [
      "CREATE INDEX broad_at ON orders(orddoc) USING XMLPATTERN '//@*' AS \
       DOUBLE";
    ];
  let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 990]" in
  experiment ~id:"E10 (§3.9, Tip 12)"
    ~claim:
      "//* and //node() indexes contain no attribute nodes; the broad //@* \
       index covers a numeric predicate on *any* attribute"
    [
      {
        vname = "only //* index = scan";
        run = xq_n db q;
        note = "broad_el rejected (attrs)";
      };
      { vname = "with //@* broad attribute index"; run = xq_n db2 q; note = "idx: broad_at" };
    ]

(* ------------------------------------------------------------------ *)
(* E11 — between (§3.10, Query 30)                                     *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let db = build_db () in
  ddl db
    [
      "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS DOUBLE";
      "CREATE INDEX price_el ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/price' AS DOUBLE";
    ];
  let merged =
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem[@price>500 and \
     @price<510]]"
  in
  let ixand =
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/price > 500 and \
     lineitem/price < 510]"
  in
  let scanned q =
    List.iter Xmlindex.Xindex.reset_stats (Engine.xml_indexes db);
    ignore (Engine.exec db q);
    List.fold_left
      (fun acc (i : Xmlindex.Xindex.t) ->
        acc + i.Xmlindex.Xindex.stats.Xmlindex.Xindex.entries_scanned)
      0 (Engine.xml_indexes db)
  in
  Printf.printf
    "\nE11 (§3.10, Query 30) — between: singleton-safe pair = ONE range \
     scan; general pair = index ANDing of two scans\n";
  Printf.printf "  entries scanned, merged between (@price):   %6d\n"
    (scanned merged);
  Printf.printf "  entries scanned, IXAND between (price el):  %6d\n"
    (scanned ixand);
  experiment ~id:"E11 timings"
    ~claim:"one range scan beats two scans + intersection"
    [
      { vname = "IXAND: two scans + intersect"; run = xq_n db ixand; note = "idx: price_el x2" };
      { vname = "merged: single range scan"; run = xq_n db merged; note = "idx: li_price" };
      { vname = "no index (scan)"; run = xq_noidx_n db merged; note = "baseline scan" };
    ]

(* ------------------------------------------------------------------ *)
(* E12 — tolerant indexing (§2.1)                                      *)
(* ------------------------------------------------------------------ *)

let e12 () =
  Printf.printf
    "\nE12 (§2.1) — tolerant indexes: uncastable values are skipped, \
     inserts never blocked\n";
  let db = Engine.create () in
  ignore (Engine.exec db "CREATE TABLE addresses (aid INTEGER, adoc XML)");
  ddl db
    [
      "CREATE INDEX pc_num ON addresses(adoc) USING XMLPATTERN \
       '//postalcode' AS DOUBLE";
      "CREATE INDEX pc_str ON addresses(adoc) USING XMLPATTERN \
       '//postalcode' AS VARCHAR(12)";
    ];
  Engine.load_documents db ~table:"addresses" ~column:"adoc"
    (Workload.Feeds_gen.addresses ~canadian_frac:0.3 n_docs);
  let entries name =
    Xmlindex.Xindex.entry_count
      (List.find
         (fun (i : Xmlindex.Xindex.t) ->
           i.Xmlindex.Xindex.def.Xmlindex.Xindex.iname = name)
         (Engine.xml_indexes db))
  in
  Printf.printf
    "  %d documents inserted; DOUBLE index entries: %d; VARCHAR index \
     entries: %d (gap = tolerated Canadian postal codes)\n"
    n_docs (entries "pc_num") (entries "pc_str");
  flush stdout

(* ------------------------------------------------------------------ *)
(* E13 — scaling sweep (the paper's implicit "figure")                 *)
(* ------------------------------------------------------------------ *)

let e13 () =
  Printf.printf
    "\nE13 — scaling: eligible index probe vs collection scan as the \
     collection grows (selectivity fixed at ~1%%)\n";
  Printf.printf "  %8s %14s %14s %9s\n" "N docs" "scan" "indexed" "speedup";
  List.iter
    (fun n ->
      let db = build_db ~n () in
      ddl db
        [
          "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
           '//lineitem/@price' AS DOUBLE";
        ];
      let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>995]" in
      let t_scan =
        measure_ns ~quota:0.4 "scan" (fun () -> ignore (xq_noidx_n db q ()))
      in
      let t_idx =
        measure_ns ~quota:0.4 "idx" (fun () -> ignore (xq_n db q ()))
      in
      Printf.printf "  %8d %14s %14s %8.1fx\n" n (pretty_ns t_scan)
        (pretty_ns t_idx) (t_scan /. t_idx))
    [ 1000; 4000; 16000 ];
  flush stdout

(* ------------------------------------------------------------------ *)
(* E14 — index maintenance overhead (§2.1)                             *)
(* ------------------------------------------------------------------ *)

let e14 () =
  Printf.printf
    "\nE14 (§2.1) — maintenance: insert cost vs number (and breadth) of \
     indexes (the paper's \"staggering\" index-everything warning)\n";
  let docs =
    Workload.Orders_gen.orders
      { Workload.Orders_gen.default with n_customers = 50 }
      200
  in
  (* Parse once, outside the timed region: the experiment measures
     insert + index-maintenance cost, and re-parsing 200 documents per
     iteration used to dominate (and flatten) the per-setup deltas. *)
  let parsed =
    let db = Engine.create () in
    Engine.parse_documents db docs
  in
  let setups =
    [
      ("no indexes", []);
      ( "1 path index",
        [
          "CREATE INDEX i1 ON orders(orddoc) USING XMLPATTERN \
           '//lineitem/@price' AS DOUBLE";
        ] );
      ( "3 path indexes",
        [
          "CREATE INDEX i1 ON orders(orddoc) USING XMLPATTERN \
           '//lineitem/@price' AS DOUBLE";
          "CREATE INDEX i2 ON orders(orddoc) USING XMLPATTERN '//custid' \
           AS DOUBLE";
          "CREATE INDEX i3 ON orders(orddoc) USING XMLPATTERN \
           '//product/id' AS VARCHAR(20)";
        ] );
      ( "broad //@* + //* indexes",
        [
          "CREATE INDEX b1 ON orders(orddoc) USING XMLPATTERN '//@*' AS \
           DOUBLE";
          "CREATE INDEX b2 ON orders(orddoc) USING XMLPATTERN '//*' AS \
           VARCHAR(60)";
        ] );
    ]
  in
  Printf.printf "  %-28s %14s %12s %s\n" "setup" "time/200 docs" "docs/s"
    "overhead";
  let base = ref None in
  List.iter
    (fun (name, idxs) ->
      let run () =
        let db = Engine.create () in
        ignore (Engine.exec db "CREATE TABLE orders (ordid INTEGER, orddoc XML)");
        ddl db idxs;
        Engine.load_parsed_documents db ~table:"orders" ~column:"orddoc"
          parsed
      in
      let ns = measure_ns ~quota:1.0 name run in
      let throughput = 200. /. (ns /. 1e9) in
      if !base = None then base := Some ns;
      Printf.printf "  %-28s %14s %12.0f %.2fx\n" name (pretty_ns ns)
        throughput
        (ns /. Option.get !base))
    setups;
  flush stdout

(* ------------------------------------------------------------------ *)
(* E15 — ablation: path-specific vs broad indexing (§2.1 design)       *)
(* ------------------------------------------------------------------ *)

let e15 () =
  (* RSS feeds carry several numeric attributes (fileSize, lat, long,
     version): a broad //@* index is much larger than a targeted one. *)
  let mk () =
    let db = Engine.create () in
    ignore (Engine.exec db "CREATE TABLE feeds (fid INTEGER, feed XML)");
    Engine.load_documents db ~table:"feeds" ~column:"feed"
      (Workload.Feeds_gen.feeds
         { Workload.Feeds_gen.default with extension_frac = 0.6 }
         n_docs);
    db
  in
  let db_broad = mk () in
  ddl db_broad
    [
      "CREATE INDEX broad_at ON feeds(feed) USING XMLPATTERN '//@*' AS        DOUBLE";
    ];
  let db_narrow = mk () in
  ddl db_narrow
    [
      "CREATE INDEX fsize ON feeds(feed) USING XMLPATTERN        '//*:content/@fileSize' AS DOUBLE";
    ];
  let q =
    "declare namespace media = \"http://search.yahoo.com/mrss/\";      db2-fn:xmlcolumn('FEEDS.FEED')//item[media:content/@fileSize > 95000]"
  in
  let size db =
    Xmlindex.Xindex.entry_count (List.hd (Engine.xml_indexes db))
  in
  Printf.printf
    "\nE15 (ablation, §2.1) — path-specific vs broad indexing: thanks to      the path table and value-major keys a broad //@* index still probes      one value range, but it stores (and maintains) every numeric      attribute in the collection\n";
  Printf.printf
    "  broad //@* index entries:              %6d\n    \  targeted //*:content/@fileSize entries: %5d\n"
    (size db_broad) (size db_narrow);
  experiment ~id:"E15 timings"
    ~claim:"broad //@* vs targeted //*:content/@fileSize (feeds workload)"
    [
      { vname = "no index (scan)"; run = xq_noidx_n db_narrow q; note = "collection scan" };
      { vname = "broad //@* index"; run = xq_n db_broad q; note = "idx: broad_at" };
      { vname = "targeted @fileSize index"; run = xq_n db_narrow q; note = "idx: fsize" };
    ]

(* ------------------------------------------------------------------ *)
(* The paper-query corpus (shared by --governor-overhead and           *)
(* --suite micro)                                                      *)
(* ------------------------------------------------------------------ *)

(** Build the corpus database: orders/customer/products plus the four
    indexes the paper queries exercise. *)
let corpus_db ~n () =
  let db = build_db ~n () in
  ddl db
    [
      "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS DOUBLE";
      "CREATE INDEX li_price_v ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/@price' AS VARCHAR(20)";
      "CREATE INDEX li_pid ON orders(orddoc) USING XMLPATTERN \
       '//lineitem/product/id' AS VARCHAR(20)";
      "CREATE INDEX c_custid ON customer(cdoc) USING XMLPATTERN \
       '/customer/id' AS DOUBLE";
    ];
  db

(** Every paper query whose evaluation is timing-meaningful, with a
    stable id: [(id, label, run)]. Queries 4/6/10/12/14/20/23–25/28/29
    are error-demonstration, namespace-setup or plan-inspection cases
    and are exercised in test/t_paper.ml instead. *)
let paper_corpus db : (string * string * (unit -> int)) list =
  let xq id label src = (id, label, xq_n db src) in
  let sql id label src = (id, label, sql_n db src) in
  [
    xq "Q1" "//order[lineitem/@price>990]"
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>990]";
    xq "Q2" "@* wildcard (scan)"
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>990]";
    xq "Q3" "string predicate"
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \"990\"]";
    sql "Q5" "XMLQuery select list"
      "SELECT XMLQuery('$o//lineitem[@price > 990]' passing orddoc as \
       \"o\") FROM orders";
    xq "Q7" "stand-alone XQuery"
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 990]";
    sql "Q8" "XMLExists"
      "SELECT ordid, orddoc FROM orders WHERE \
       XMLExists('$o//lineitem[@price > 990]' passing orddoc as \"o\")";
    sql "Q9" "boolean XMLExists (scan)"
      "SELECT ordid, orddoc FROM orders WHERE \
       XMLExists('$o//lineitem/@price > 990' passing orddoc as \"o\")";
    sql "Q11" "XMLTable row-producer"
      "SELECT o.ordid, t.li FROM orders o, XMLTable('$o//lineitem[@price \
       > 990]' passing o.orddoc as \"o\" COLUMNS \"li\" XML BY REF PATH \
       '.') as t(li)";
    sql "Q13" "product join in XQuery"
      "SELECT p.name FROM products p, orders o WHERE XMLExists('$o \
       //lineitem/product[id eq $pid]' passing o.orddoc as \"o\", p.id \
       as \"pid\")";
    sql "Q15" "SQL-side XML join (scan)"
      "SELECT c.cid FROM orders o, customer c WHERE \
       XMLCast(XMLQuery('$o/order/custid' passing o.orddoc as \"o\") as \
       DOUBLE) = XMLCast(XMLQuery('$c/customer/id' passing c.cdoc as \
       \"c\") as DOUBLE)";
    sql "Q16" "XQuery-side join + casts"
      "SELECT c.cid FROM orders o, customer c WHERE \
       XMLExists('$o/order[custid/xs:double(.) = \
       $c/customer/id/xs:double(.)]' passing o.orddoc as \"o\", c.cdoc \
       as \"c\")";
    xq "Q17" "for binding"
      "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') for $i in \
       $d//lineitem[@price > 990] return <result>{$i}</result>";
    xq "Q18" "let binding (scan)"
      "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') let $i := \
       $d//lineitem[@price > 990] return <result>{$i}</result>";
    xq "Q19" "ctor in return (scan)"
      "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
       <result>{$o/lineitem[@price > 990]}</result>";
    xq "Q21" "let + where"
      "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order let $p := \
       $o/lineitem/@price where $p > 990 return \
       <result>{$o/lineitem}</result>";
    xq "Q22" "bare path in return"
      "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
       $o/lineitem[@price > 990]";
    xq "Q26" "constructed view (scan)"
      "let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
       /order/lineitem return <item quantity=\"{$i/quantity}\"> \
       <pid>{$i/product/id/data(.)}</pid></item> for $j in $view where \
       $j/pid = 'p3' return $j";
    xq "Q27" "base collection"
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem where \
       $i/product/id = 'p3' return $i/quantity";
    xq "Q30" "attribute between"
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
       //order[lineitem[@price>100 and @price<200]] return $i";
  ]

(** Generous-but-armed limits: every budget far above what any corpus
    query uses, so the armed runs measure metering cost, not throttling. *)
let generous_limits =
  {
    Xdm.Limits.max_steps = Some 1_000_000_000;
    max_nodes = Some 1_000_000_000;
    max_depth = Some 10_000;
    timeout = Some 300.;
  }

(* ------------------------------------------------------------------ *)
(* Governor overhead (--governor-overhead)                             *)
(* ------------------------------------------------------------------ *)

(** Measures the cost of running with the resource governor armed.

    Each corpus query is run twice over the same 500-document database:
    once with limits disabled (unarmed meter — the single [armed] branch
    per eval step) and once with generous-but-armed limits, and the
    per-query overhead distribution (mean/p50/p95) is reported. *)
let governor_overhead () =
  let db = corpus_db ~n:500 () in
  let armed = generous_limits in
  let queries =
    List.map
      (fun (id, label, run) -> (id ^ ": " ^ label, run))
      (paper_corpus db)
  in
  Printf.printf
    "Governor overhead — paper query suite, 500 orders, limits off vs \
     armed (%s)\n"
    (Xdm.Limits.to_string armed);
  Printf.printf "  %-36s %12s %12s %9s\n" "query" "limits off" "limits on"
    "overhead";
  let overheads = Xprof.Hist.create () in
  List.iter
    (fun (name, run) ->
      Engine.set_limits db Xdm.Limits.unlimited;
      ignore (run ());
      let off = measure_ns ~quota:0.25 (name ^ " off") (fun () -> ignore (run ())) in
      Engine.set_limits db armed;
      ignore (run ());
      let on = measure_ns ~quota:0.25 (name ^ " on") (fun () -> ignore (run ())) in
      let pct = (on -. off) /. off *. 100. in
      Printf.printf "  %-36s %12s %12s %+8.1f%%\n" name (pretty_ns off)
        (pretty_ns on) pct;
      flush stdout;
      Xprof.Hist.add overheads pct)
    queries;
  Engine.set_limits db Xdm.Limits.unlimited;
  Printf.printf
    "\n  governor overhead over %d queries: mean %+.1f%%  p50 %+.1f%%  \
     p95 %+.1f%%\n"
    (Xprof.Hist.count overheads)
    (Xprof.Hist.mean overheads)
    (Xprof.Hist.p50 overheads)
    (Xprof.Hist.p95 overheads)

(* ------------------------------------------------------------------ *)
(* Micro suite (--suite micro): BENCH_micro.json                       *)
(* ------------------------------------------------------------------ *)

module J = Xprof.Json

(** Run the paper-query corpus, collecting per-query latency percentiles
    (profiling OFF, so timing is unperturbed), profiled counters from one
    instrumented run, the paper's eligible/ineligible probe-vs-scan
    contrast, and the governor-overhead distribution. Writes [out]
    (BENCH_micro.json). [--quick] shrinks the database and iteration
    count for CI smoke runs. *)
let micro_suite ~quick ~out () =
  let n = if quick then 150 else 500 in
  let iters = if quick then 3 else 10 in
  Printf.printf
    "micro suite — paper query corpus over %d orders, %d timing \
     iterations%s\n"
    n iters
    (if quick then " (--quick)" else "");
  let db = corpus_db ~n () in
  let corpus = paper_corpus db in
  let counters_by_id : (string, (string * int) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let gov_pcts = Xprof.Hist.create () in
  let time_once run =
    let t0 = Unix.gettimeofday () in
    ignore (run ());
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  let queries_json =
    List.map
      (fun (id, label, run) ->
        (* one profiled run: counters + result cardinality *)
        Engine.set_profiling db true;
        let rows = run () in
        let counters = Xprof.counters (Engine.profile db) in
        Engine.set_profiling db false;
        Hashtbl.replace counters_by_id id counters;
        (* latency distribution, profiling off *)
        let lat = Xprof.Hist.create () in
        for _ = 1 to iters do
          Xprof.Hist.add lat (time_once run)
        done;
        (* governor overhead: armed vs unarmed medians *)
        Engine.set_limits db generous_limits;
        let lat_armed = Xprof.Hist.create () in
        for _ = 1 to iters do
          Xprof.Hist.add lat_armed (time_once run)
        done;
        Engine.set_limits db Xdm.Limits.unlimited;
        let off = Xprof.Hist.p50 lat and on = Xprof.Hist.p50 lat_armed in
        if off > 0. then Xprof.Hist.add gov_pcts ((on -. off) /. off *. 100.);
        Printf.printf
          "  %-4s %-28s %5d rows  p50 %8.3f ms  p95 %8.3f ms  probes %d  \
           docs %d\n"
          id label rows (Xprof.Hist.p50 lat) (Xprof.Hist.p95 lat)
          (List.assoc "index_probes" counters)
          (List.assoc "docs_scanned" counters);
        flush stdout;
        J.Obj
          [
            ("id", J.Str id);
            ("label", J.Str label);
            ("rows", J.Int rows);
            ("latency_ms", Xprof.Hist.summary_json lat);
            ( "counters",
              J.Obj (List.map (fun (k, v) -> (k, J.Int v)) counters) );
          ])
      corpus
  in
  (* the paper's eligible/ineligible contrast, machine-checkable:
     profiled index probes of the eligible query must be strictly less
     than the documents its ineligible twin scans *)
  let pairs =
    [
      ("Q1", "Q2");
      ("Q8", "Q9");
      ("Q16", "Q15");
      ("Q17", "Q18");
      ("Q22", "Q19");
      ("Q27", "Q26");
    ]
  in
  let pairs_json =
    List.map
      (fun (elig, inelig) ->
        let ce = Hashtbl.find counters_by_id elig in
        let ci = Hashtbl.find counters_by_id inelig in
        let probes = List.assoc "index_probes" ce in
        let docs = List.assoc "docs_scanned" ci in
        let ok = probes < docs in
        Printf.printf "  pair %s/%s: %d probes vs %d docs scanned — %s\n"
          elig inelig probes docs
          (if ok then "ok" else "VIOLATION");
        J.Obj
          [
            ("eligible", J.Str elig);
            ("ineligible", J.Str inelig);
            ("index_probes", J.Int probes);
            ("docs_scanned", J.Int docs);
            ("ok", J.Bool ok);
          ])
      pairs
  in
  let json =
    J.Obj
      [
        ("suite", J.Str "micro");
        ("quick", J.Bool quick);
        ("n_docs", J.Int n);
        ("iterations", J.Int iters);
        ("queries", J.Arr queries_json);
        ("pairs", J.Arr pairs_json);
        ( "governor_overhead_pct",
          J.Obj
            [
              ("n", J.Int (Xprof.Hist.count gov_pcts));
              ("mean", J.Float (Xprof.Hist.mean gov_pcts));
              ("p50", J.Float (Xprof.Hist.p50 gov_pcts));
              ("p95", J.Float (Xprof.Hist.p95 gov_pcts));
            ] );
      ]
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (J.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s (%d queries, %d pairs)\n" out
    (List.length queries_json) (List.length pairs_json)

(* ------------------------------------------------------------------ *)
(* Prepared-statement suite (--suite prepared): the "prepared" section  *)
(* of BENCH_micro.json                                                  *)
(* ------------------------------------------------------------------ *)

(** First index of [needle] in [hay], if any. *)
let find_substring (hay : string) (needle : string) : int option =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  if nn = 0 then None else go 0

(** Add (or replace) a top-level [key] section in the JSON object stored
    at [out]. [Xprof.Json] is emit-only, so this is a textual splice: the
    existing object's final [}] (or a previously spliced [key] section,
    which is always last) is replaced with the new section. A missing or
    non-object file is rewritten as a fresh object. *)
let splice_section ~(out : string) ~(key : string) (section : J.t) =
  let rendered = J.to_string (J.Obj [ (key, section) ]) in
  let body = String.sub rendered 1 (String.length rendered - 2) in
  let fresh () = "{\"suite\":\"prepared\"," ^ body ^ "}" in
  let merged =
    if not (Sys.file_exists out) then fresh ()
    else
      let s = String.trim (In_channel.with_open_text out In_channel.input_all) in
      if s = "" || s.[String.length s - 1] <> '}' then fresh ()
      else
        let prefix =
          match find_substring s (",\"" ^ key ^ "\":") with
          | Some i -> String.sub s 0 i
          | None -> String.sub s 0 (String.length s - 1)
        in
        prefix ^ "," ^ body ^ "}"
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc merged;
      output_char oc '\n')

(** One timing sample: milliseconds per run over a batch of [batch]
    back-to-back runs (batching amortizes clock-read noise on the
    sub-millisecond statements this suite measures). *)
let sample_ms ~batch (f : unit -> unit) : float =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to batch do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int batch

(** Median milliseconds per run of [f] over [iters] batched samples. *)
let p50_ms ~iters ~batch (f : unit -> unit) : float =
  let h = Xprof.Hist.create () in
  for _ = 1 to iters do
    Xprof.Hist.add h (sample_ms ~batch f)
  done;
  Xprof.Hist.p50 h

(** Median ms/run for several workloads measured together: each round
    takes one batched sample of every workload, so scheduler drift and
    GC pressure land on all of them equally instead of biasing whichever
    was measured last. *)
let p50_interleaved ~iters ~batch (fns : (unit -> unit) list) : float list =
  let hists = List.map (fun _ -> Xprof.Hist.create ()) fns in
  for _ = 1 to iters do
    List.iter2 (fun h f -> Xprof.Hist.add h (sample_ms ~batch f)) hists fns
  done;
  List.map Xprof.Hist.p50 hists

(** The compile-sensitive corpus subset measured by the prepared suite:
    queries whose indexed/selective execution makes the cached front half
    (parse + resolve + eligibility analysis) a visible fraction of total
    latency. Full-scan queries stay in the micro suite. *)
let prepared_corpus : (string * string * string) list =
  [
    ( "Q1",
      "//order[lineitem/@price>990]",
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>990]" );
    ( "Q3",
      "string predicate",
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \"990\"]" );
    ( "Q7",
      "stand-alone XQuery",
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 990]" );
    ( "Q8",
      "XMLExists",
      "SELECT ordid, orddoc FROM orders WHERE XMLExists('$o//lineitem[@price \
       > 990]' passing orddoc as \"o\")" );
    ( "Q11",
      "XMLTable row-producer",
      "SELECT o.ordid, t.li FROM orders o, XMLTable('$o//lineitem[@price > \
       990]' passing o.orddoc as \"o\" COLUMNS \"li\" XML BY REF PATH '.') \
       as t(li)" );
    ( "Q27",
      "base collection",
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem where \
       $i/product/id = 'p3' return $i/quantity" );
    ( "Q30",
      "attribute between",
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
       //order[lineitem[@price>100 and @price<200]] return $i" );
  ]

(** Scan-heavy statements for the cursor first-row contrast: results per
    pull, so the first row arrives after one document / one table row
    rather than after the full materialization. *)
let cursor_corpus : (string * string * string) list =
  [
    ( "C1",
      "//lineitem (all, streamed per doc)",
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem" );
    ("C2", "SELECT ordid FROM orders", "SELECT ordid FROM orders");
    ( "C3",
      "FLWOR streamed per doc",
      "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') return \
       $d//order/lineitem" );
  ]

let outcome_length (o : Engine.outcome) =
  match o.Engine.payload with
  | Engine.Rows { rows; _ } -> List.length rows
  | Engine.Items items -> List.length items

(** Cold vs warm vs prepared p50 per compile-sensitive paper query, plus
    cursor first-row vs full-materialization latency. Splices the
    ["prepared"] section into [out] (normally BENCH_micro.json, after the
    micro suite wrote it). *)
let prepared_suite ~quick ~out () =
  let n = if quick then 150 else 500 in
  let iters = if quick then 21 else 41 in
  let batch = 5 in
  Printf.printf
    "prepared suite — compile-sensitive corpus over %d orders, %d timing \
     iterations%s\n"
    n iters
    (if quick then " (--quick)" else "");
  let db = corpus_db ~n () in
  Printf.printf "  %-4s %-28s %5s %10s %10s %10s %8s\n" "id" "label" "rows"
    "cold p50" "warm p50" "prep p50" "speedup";
  let queries_json =
    List.map
      (fun (id, label, src) ->
        let rows = outcome_length (Engine.exec db src) in
        let st = Engine.prepare db src in
        let cold_run () =
          (* every run recompiles: the cache is dropped first *)
          Engine.reset_plan_cache db;
          ignore (Engine.exec db src)
        in
        (* the un-prepared exec path amortized by the plan cache *)
        let warm_run () = ignore (Engine.exec db src) in
        let prep_run () = ignore (Engine.execute st) in
        ignore (Engine.exec db src);
        let cold, warm, prep =
          match p50_interleaved ~iters ~batch [ cold_run; warm_run; prep_run ] with
          | [ c; w; p ] -> (c, w, p)
          | _ -> assert false
        in
        let ok = prep < cold && warm < cold in
        Printf.printf "  %-4s %-28s %5d %8.3fms %8.3fms %8.3fms %7.2fx%s\n"
          id label rows cold warm prep
          (cold /. prep)
          (if ok then "" else "  VIOLATION");
        flush stdout;
        J.Obj
          [
            ("id", J.Str id);
            ("label", J.Str label);
            ("rows", J.Int rows);
            ("cold_p50_ms", J.Float cold);
            ("warm_p50_ms", J.Float warm);
            ("prepared_p50_ms", J.Float prep);
            ("speedup_cold_over_prepared", J.Float (cold /. prep));
            ("ok", J.Bool ok);
          ])
      prepared_corpus
  in
  Printf.printf "  %-4s %-34s %5s %12s %12s\n" "id" "cursor statement" "rows"
    "first row" "full exec";
  let cursor_json =
    List.map
      (fun (id, label, src) ->
        let rows = outcome_length (Engine.exec db src) in
        let full = p50_ms ~iters ~batch (fun () -> ignore (Engine.exec db src)) in
        let first_row =
          p50_ms ~iters ~batch (fun () ->
              let cur = Engine.open_cursor db src in
              ignore (Engine.Cursor.next cur);
              Engine.Cursor.close cur)
        in
        let ok = first_row < full in
        Printf.printf "  %-4s %-34s %5d %10.3fms %10.3fms%s\n" id label rows
          first_row full
          (if ok then "" else "  VIOLATION");
        flush stdout;
        J.Obj
          [
            ("id", J.Str id);
            ("label", J.Str label);
            ("rows", J.Int rows);
            ("first_row_p50_ms", J.Float first_row);
            ("full_p50_ms", J.Float full);
            ("ok", J.Bool ok);
          ])
      cursor_corpus
  in
  let stats = Engine.plan_cache_stats db in
  let section =
    J.Obj
      [
        ("n_docs", J.Int n);
        ("iterations", J.Int iters);
        ("queries", J.Arr queries_json);
        ("cursor", J.Arr cursor_json);
        ( "plan_cache",
          J.Obj
            [
              ("size", J.Int stats.Engine.Plan_cache.size);
              ("hits", J.Int stats.Engine.Plan_cache.hits);
              ("misses", J.Int stats.Engine.Plan_cache.misses);
              ("invalidations", J.Int stats.Engine.Plan_cache.invalidations);
              ("evictions", J.Int stats.Engine.Plan_cache.evictions);
            ] );
      ]
  in
  splice_section ~out ~key:"prepared" section;
  Printf.printf "spliced \"prepared\" section into %s (%d queries, %d cursors)\n"
    out
    (List.length queries_json)
    (List.length cursor_json)

(* ------------------------------------------------------------------ *)
(* Parallel suite (--suite parallel): the "parallel" section of        *)
(* BENCH_micro.json                                                    *)
(* ------------------------------------------------------------------ *)

(** p50 latency of scan-shaped work at parallelism 1/2/4: the
    index-ineligible collection scan (Q2's wildcard predicate), the
    multi-probe index AND (Q30's between-merge) and a bulk load + index
    build. Splices the ["parallel"] section into [out]; the CI gate
    reads [scan.ok] — the 4-domain scan p50 must not exceed the
    sequential p50 (with a 5%% noise allowance, since on the sequential
    fallback backend every level runs the identical code and the gate
    compares two independent medians of the same work). *)
let parallel_suite ~quick ~out () =
  let n = if quick then 300 else 1000 in
  let iters = if quick then 11 else 21 in
  let levels = [ 1; 2; 4 ] in
  Printf.printf
    "parallel suite — scan-shaped work over %d orders at parallelism \
     1/2/4 (backend: %s)%s\n"
    n Xpar.backend
    (if quick then " (--quick)" else "");
  let db = corpus_db ~n () in
  let scan_q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>990]" in
  let and_q =
    "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
     //order[lineitem[@price>100 and @price<200]] return $i"
  in
  let load_docs =
    Workload.Orders_gen.orders
      { Workload.Orders_gen.default with n_customers = 50 }
      (if quick then 150 else 400)
  in
  let load_run () =
    let fresh = Engine.create () in
    ignore (Engine.exec fresh "CREATE TABLE orders (ordid INTEGER, orddoc XML)");
    ddl fresh
      [
        "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
         '//lineitem/@price' AS DOUBLE";
      ];
    Engine.set_parallelism fresh (Engine.parallelism db);
    Engine.load_documents fresh ~table:"orders" ~column:"orddoc" load_docs
  in
  let measure name run =
    List.map
      (fun p ->
        Engine.set_parallelism db p;
        ignore (run ());
        let ms = p50_ms ~iters ~batch:1 run in
        Printf.printf "  %-10s parallelism %d: p50 %8.3f ms\n" name p ms;
        flush stdout;
        (p, ms))
      levels
  in
  let scan = measure "scan" (fun () -> ignore (Engine.exec db scan_q)) in
  let index_and =
    measure "index-AND" (fun () -> ignore (Engine.exec db and_q))
  in
  let load = measure "load" load_run in
  Engine.set_parallelism db 1;
  let workload_json name lst ~gate =
    let p1 = List.assoc 1 lst and p4 = List.assoc 4 lst in
    let ok = (not gate) || p4 <= p1 *. 1.05 in
    if gate then
      Printf.printf "  %s gate: par4 %.3f ms vs par1 %.3f ms — %s\n" name p4
        p1
        (if ok then "ok" else "VIOLATION");
    ( name,
      J.Obj
        [
          ( "p50_ms",
            J.Obj
              (List.map (fun (p, ms) -> (string_of_int p, J.Float ms)) lst)
          );
          ("speedup_4x", J.Float (p1 /. p4));
          ("ok", J.Bool ok);
        ] )
  in
  let section =
    J.Obj
      [
        ("backend", J.Str Xpar.backend);
        ("n_docs", J.Int n);
        ("iterations", J.Int iters);
        workload_json "scan" scan ~gate:true;
        workload_json "index_and" index_and ~gate:false;
        workload_json "load" load ~gate:false;
      ]
  in
  splice_section ~out ~key:"parallel" section;
  Printf.printf "spliced \"parallel\" section into %s\n" out

(* ------------------------------------------------------------------ *)
(* Structural suite (--suite structural): the "structural" section of  *)
(* BENCH_micro.json                                                    *)
(* ------------------------------------------------------------------ *)

(** A deterministic document of [fanout]^[depth] shape: nested [s]
    sections bottoming out in [id] leaves, so [//id/ancestor::*] touches
    every level on the way back up. *)
let struct_doc ~depth ~fanout seed =
  let b = Buffer.create 256 in
  let rec go d k =
    if d = 0 then Buffer.add_string b (Printf.sprintf "<id>%d</id>" (seed + k))
    else begin
      Buffer.add_string b (Printf.sprintf "<s i=\"%d\">" k);
      for c = 0 to fanout - 1 do
        go (d - 1) ((k * fanout) + c)
      done;
      Buffer.add_string b "</s>"
    end
  in
  go depth 0;
  Buffer.contents b

(** Reverse-axis latency, structural join vs tree-walk, at three document
    sizes. The query [//id/ancestor::*] is the staircase join's best
    case: navigation re-walks a parent chain per context node where the
    join's early-stop makes the whole axis amortized linear. Splices the
    ["structural"] section into [out]; the CI gate reads [ok] — at the
    largest tier the structural p50 must not exceed the tree-walk p50
    (the ISSUE-level claim that the encoding pays for itself where
    documents are deep). *)
let structural_suite ~quick ~out () =
  let iters = if quick then 7 else 15 in
  let tiers =
    (* (name, docs, depth, fanout): ~13 / ~120 / ~1100 elements per doc *)
    if quick then
      [ ("small", 40, 2, 3); ("medium", 40, 4, 3); ("large", 12, 6, 3) ]
    else
      [ ("small", 80, 2, 3); ("medium", 80, 4, 3); ("large", 30, 6, 3) ]
  in
  let q = "db2-fn:xmlcolumn('T.D')//id/ancestor::*" in
  Printf.printf
    "structural suite — %s, structural join vs tree-walk at three \
     document sizes%s\n"
    q
    (if quick then " (--quick)" else "");
  let results =
    List.map
      (fun (name, docs, depth, fanout) ->
        let db = Engine.create () in
        ignore (Engine.exec db "CREATE TABLE t (a integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init docs (fun i -> struct_doc ~depth ~fanout (i * 10_000)));
        ignore (Engine.exec db "CREATE STRUCTURAL INDEX st ON t(d)");
        let nodes =
          Xmlindex.Structindex.node_count
            (List.hd (Engine.struct_indexes db))
          / docs
        in
        let run () = ignore (Engine.exec db q) in
        Engine.set_use_indexes db false;
        run ();
        let nav = p50_ms ~iters ~batch:1 run in
        Engine.set_use_indexes db true;
        run ();
        let st = p50_ms ~iters ~batch:1 run in
        Printf.printf
          "  %-6s %4d docs × %5d nodes: tree-walk p50 %8.3f ms  \
           structural p50 %8.3f ms  speedup %.2fx\n"
          name docs nodes nav st (nav /. st);
        flush stdout;
        (name, docs, nodes, nav, st))
      tiers
  in
  let _, _, _, nav_l, st_l =
    List.find (fun (n, _, _, _, _) -> n = "large") results
  in
  let ok = st_l <= nav_l in
  Printf.printf
    "  gate (large tier): structural %.3f ms vs tree-walk %.3f ms — %s\n"
    st_l nav_l
    (if ok then "ok" else "VIOLATION");
  let section =
    J.Obj
      ([
         ("query", J.Str q);
         ("iterations", J.Int iters);
       ]
      @ List.map
          (fun (name, docs, nodes, nav, st) ->
            ( name,
              J.Obj
                [
                  ("n_docs", J.Int docs);
                  ("nodes_per_doc", J.Int nodes);
                  ("treewalk_p50_ms", J.Float nav);
                  ("structural_p50_ms", J.Float st);
                  ("speedup", J.Float (nav /. st));
                ] ))
          results
      @ [ ("ok", J.Bool ok) ])
  in
  splice_section ~out ~key:"structural" section;
  Printf.printf "spliced \"structural\" section into %s\n" out

(* ------------------------------------------------------------------ *)
(* Durability suite (--suite durability): the "durability" section of  *)
(* BENCH_micro.json                                                    *)
(* ------------------------------------------------------------------ *)

let bench_dir_ctr = ref 0

let bench_fresh_dir () =
  incr bench_dir_ctr;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "xqdb-bench-%d-%d.xqdb" (Unix.getpid ()) !bench_dir_ctr)

let rec bench_rm_rf path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter
        (fun n -> bench_rm_rf (Filename.concat path n))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

(** What durability costs and what recovery costs: bulk-load p50 for the
    same corpus in-memory vs durable (WAL, no fsync) vs durable+fsync,
    and crash-recovery time as a function of WAL length (reopening a
    data directory whose whole history lives in the log). Splices the
    ["durability"] section into [out]; the CI gate reads [recovery.ok] —
    every reopen must replay the full committed history (recovered row
    count equals statements executed). *)
let durability_suite ~quick ~out () =
  let n = if quick then 120 else 300 in
  let iters = if quick then 5 else 9 in
  Printf.printf
    "durability suite — %d-order bulk load in-memory / durable / \
     durable+fsync, recovery vs WAL length%s\n"
    n
    (if quick then " (--quick)" else "");
  let docs =
    Workload.Orders_gen.orders
      { Workload.Orders_gen.default with n_customers = 50 }
      n
  in
  let load_into db =
    ignore (Engine.exec db "CREATE TABLE orders (ordid INTEGER, orddoc XML)");
    ddl db
      [
        "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
         '//lineitem/@price' AS DOUBLE";
      ];
    Engine.load_documents db ~table:"orders" ~column:"orddoc" docs
  in
  let measure name run =
    ignore (run ());
    let ms = p50_ms ~iters ~batch:1 run in
    Printf.printf "  load %-14s p50 %8.3f ms\n" name ms;
    flush stdout;
    ms
  in
  let mem = measure "in-memory" (fun () -> load_into (Engine.create ())) in
  let durable_run ~sync () =
    let dir = bench_fresh_dir () in
    Fun.protect
      ~finally:(fun () -> bench_rm_rf dir)
      (fun () ->
        let db = Engine.open_db ~sync ~data_dir:dir () in
        load_into db;
        Engine.close db)
  in
  let dur = measure "durable" (durable_run ~sync:false) in
  let dur_fsync = measure "durable+fsync" (durable_run ~sync:true) in
  (* recovery time vs WAL length: a database whose entire history is in
     the log (no checkpoint), reopened cold *)
  let recovery_point stmts =
    let dir = bench_fresh_dir () in
    Fun.protect
      ~finally:(fun () -> bench_rm_rf dir)
      (fun () ->
        let db = Engine.open_db ~sync:false ~data_dir:dir () in
        ignore (Engine.exec db "CREATE TABLE t (a integer, d XML)");
        ignore
          (Engine.exec db
             "CREATE INDEX ip ON t(d) USING XMLPATTERN '//p' AS DOUBLE");
        for i = 1 to stmts do
          ignore
            (Engine.exec db
               (Printf.sprintf "INSERT INTO t VALUES (%d, '<a><p>%d</p></a>')"
                  i i))
        done;
        Engine.close db;
        let wal_bytes =
          try (Unix.stat (Filename.concat dir "wal.0.log")).Unix.st_size
          with Unix.Unix_error _ -> 0
        in
        (* median-of-3 cold reopen; committed records survive a reopen,
           so the same history is replayed every time *)
        let h = Xprof.Hist.create () in
        let last = ref None in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          let db2 = Engine.open_db ~data_dir:dir () in
          Xprof.Hist.add h ((Unix.gettimeofday () -. t0) *. 1000.);
          last := Some db2;
          Engine.close db2
        done;
        let db2 = Option.get !last in
        let redo =
          !(Xprof.Registry.counter (Engine.registry db2)
              "recovery_redo_records")
        in
        let rows =
          List.length (Engine.outcome_rows (Engine.exec db2 "SELECT a FROM t"))
        in
        let ok = rows = stmts in
        let open_ms = Xprof.Hist.p50 h in
        Printf.printf
          "  recovery %5d statements: WAL %8d B, reopen p50 %8.3f ms, %d \
           redo records — %s\n"
          stmts wal_bytes open_ms redo
          (if ok then "ok" else "ROWS LOST");
        flush stdout;
        ( stmts,
          J.Obj
            [
              ("statements", J.Int stmts);
              ("wal_bytes", J.Int wal_bytes);
              ("open_p50_ms", J.Float open_ms);
              ("redo_records", J.Int redo);
              ("ok", J.Bool ok);
            ],
          ok ))
  in
  let points =
    List.map recovery_point (if quick then [ 50; 200 ] else [ 100; 400; 1600 ])
  in
  let recovery_ok = List.for_all (fun (_, _, ok) -> ok) points in
  Printf.printf "  recovery gate: %s\n"
    (if recovery_ok then "ok" else "VIOLATION");
  let section =
    J.Obj
      [
        ("n_docs", J.Int n);
        ("iterations", J.Int iters);
        ( "load_p50_ms",
          J.Obj
            [
              ("memory", J.Float mem);
              ("durable", J.Float dur);
              ("durable_fsync", J.Float dur_fsync);
            ] );
        ("overhead_durable", J.Float (dur /. mem));
        ("overhead_fsync", J.Float (dur_fsync /. mem));
        ( "recovery",
          J.Obj
            [
              ("points", J.Arr (List.map (fun (_, j, _) -> j) points));
              ("ok", J.Bool recovery_ok);
            ] );
      ]
  in
  splice_section ~out ~key:"durability" section;
  Printf.printf "spliced \"durability\" section into %s\n" out

(* ------------------------------------------------------------------ *)
(* Server suite (--suite server): the "server" section of              *)
(* BENCH_micro.json — sustained QPS and tail latency through the Xnet  *)
(* wire protocol at 1/4/16 concurrent client connections, plus the     *)
(* cold-vs-warm plan-cache contrast over the wire. The server runs     *)
(* in-process on an ephemeral port, so the numbers include the full    *)
(* protocol round trip (encode, loopback TCP, decode, engine, reply)   *)
(* but no scheduler noise from a second process.                       *)
(* ------------------------------------------------------------------ *)

(** One timed load level: [clients] connections each firing [query]
    back-to-back for [duration] seconds. Returns (qps, latency hist). *)
let server_load ~port ~clients ~duration ~query () =
  let lats = Array.make clients [] in
  let t_start = Unix.gettimeofday () in
  let deadline = t_start +. duration in
  let body i () =
    let c = Xnet.Client.connect ~host:"127.0.0.1" ~port () in
    Fun.protect
      ~finally:(fun () -> Xnet.Client.close c)
      (fun () ->
        let acc = ref [] in
        while Unix.gettimeofday () < deadline do
          let t0 = Unix.gettimeofday () in
          ignore (Xnet.Client.exec c query);
          acc := ((Unix.gettimeofday () -. t0) *. 1000.) :: !acc
        done;
        lats.(i) <- !acc)
  in
  let threads = List.init clients (fun i -> Thread.create (body i) ()) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t_start in
  let h = Xprof.Hist.create () in
  let total = ref 0 in
  Array.iter
    (fun l ->
      total := !total + List.length l;
      List.iter (Xprof.Hist.add h) l)
    lats;
  (float_of_int !total /. elapsed, h)

let server_suite ~quick ~out () =
  let n = if quick then 150 else 500 in
  let duration = if quick then 0.4 else 2.0 in
  let cold_iters = if quick then 5 else 15 in
  Printf.printf "== server suite: %d orders, %.1fs per load level%s\n%!" n
    duration
    (if quick then " (--quick)" else "");
  let db = corpus_db ~n () in
  let srv =
    Xnet.Server.start ~engine:db
      { Xnet.Server.default_config with port = 0; max_sessions = 64 }
  in
  let port = Xnet.Server.port srv in
  (* an index-eligible paper-shaped query: representative of the
     steady-state request mix the paper argues becomes servable *)
  let query =
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 990]"
  in
  (* Cold vs shared-plan-cache warm, through the wire, single client.
     The reset happens between requests with no statement in flight, so
     it cannot race the session thread. *)
  let conn = Xnet.Client.connect ~host:"127.0.0.1" ~port () in
  let cold_h = Xprof.Hist.create () and warm_h = Xprof.Hist.create () in
  for _ = 1 to cold_iters do
    Engine.reset_plan_cache db;
    let t0 = Unix.gettimeofday () in
    ignore (Xnet.Client.exec conn query);
    Xprof.Hist.add cold_h ((Unix.gettimeofday () -. t0) *. 1000.)
  done;
  ignore (Xnet.Client.exec conn query) (* ensure the cache is hot *);
  for _ = 1 to cold_iters do
    let t0 = Unix.gettimeofday () in
    ignore (Xnet.Client.exec conn query);
    Xprof.Hist.add warm_h ((Unix.gettimeofday () -. t0) *. 1000.)
  done;
  Xnet.Client.close conn;
  let cold_p50 = Xprof.Hist.p50 cold_h and warm_p50 = Xprof.Hist.p50 warm_h in
  Printf.printf
    "  cold (plan-cache reset) p50 %.3f ms | warm (shared cache) p50 %.3f ms\n%!"
    cold_p50 warm_p50;
  let hits_before =
    (Engine.plan_cache_stats db).Engine.Plan_cache.hits
  in
  let levels =
    List.map
      (fun clients ->
        let qps, h = server_load ~port ~clients ~duration ~query () in
        Printf.printf
          "  %2d clients: %7.0f qps | p50 %.3f ms | p95 %.3f ms | p99 %.3f \
           ms\n%!"
          clients qps (Xprof.Hist.p50 h) (Xprof.Hist.p95 h) (Xprof.Hist.p99 h);
        ( string_of_int clients,
          J.Obj
            [
              ("qps", J.Float qps);
              ("p50_ms", J.Float (Xprof.Hist.p50 h));
              ("p95_ms", J.Float (Xprof.Hist.p95 h));
              ("p99_ms", J.Float (Xprof.Hist.p99 h));
              ("requests", J.Int (Xprof.Hist.count h));
            ] ))
      [ 1; 4; 16 ]
  in
  let hits_after = (Engine.plan_cache_stats db).Engine.Plan_cache.hits in
  Xnet.Server.stop srv;
  let section =
    J.Obj
      [
        ("backend", J.Str Xpar.backend);
        ("query", J.Str query);
        ("quick", J.Bool quick);
        ("cold_p50_ms", J.Float cold_p50);
        ("warm_p50_ms", J.Float warm_p50);
        ("clients", J.Obj levels);
        ( "plan_cache",
          J.Obj
            [
              ("hits", J.Int hits_after);
              (* every concurrent client's compile after the first is a
                 hit on the cache another session warmed *)
              ("shared_ok", J.Bool (hits_after > hits_before));
            ] );
        ("ok", J.Bool (warm_p50 <= cold_p50));
      ]
  in
  splice_section ~out ~key:"server" section;
  Printf.printf "spliced \"server\" section into %s\n" out

(* ------------------------------------------------------------------ *)
(* Txn suite (--suite txn): the "txn" section of BENCH_micro.json —    *)
(* the PR's headline claim, measured: reader tail latency while a      *)
(* bulk-loading read-write transaction runs must stay within 2x of an  *)
(* idle engine, because reads run on pinned MVCC snapshots and never   *)
(* wait for the writer. Also reports writer throughput and the         *)
(* begin/commit round-trip cost on an empty transaction.               *)
(* ------------------------------------------------------------------ *)

let txn_suite ~quick ~out () =
  let n = if quick then 150 else 500 in
  let duration = if quick then 0.5 else 2.0 in
  Printf.printf
    "txn suite — reader p95 idle vs during a bulk-loading transaction, %d \
     orders, %.1fs per phase%s\n%!"
    n duration
    (if quick then " (--quick)" else "");
  let db = corpus_db ~n () in
  Engine.enable_concurrent db;
  (* the reader probes a table the load never touches: the measurement is
     whether readers queue behind the writer, so the reader's own data
     size must not grow under it mid-phase *)
  let query = "db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer[id = 7]" in
  ignore (Engine.exec db query) (* warm the plan cache *);
  let read_for secs =
    let h = Xprof.Hist.create () in
    let deadline = Unix.gettimeofday () +. secs in
    while Unix.gettimeofday () < deadline do
      let t0 = Unix.gettimeofday () in
      ignore (Engine.exec db query);
      Xprof.Hist.add h ((Unix.gettimeofday () -. t0) *. 1000.)
    done;
    h
  in
  let idle = read_for duration in
  (* writer thread: back-to-back explicit transactions, 20 inserts each.
     One constant statement text, so the load compiles once and hits the
     shared plan cache after that — a flood of unique statement strings
     would measure cache-eviction thrash, not snapshot isolation *)
  let insert =
    "INSERT INTO orders VALUES (1000000, '<order id=\"1000000\"><lineitem \
     price=\"5.0\"><product><id>BULK</id></product></lineitem></order>')"
  in
  let stop = Atomic.make false in
  let commits = ref 0 and rows = ref 0 in
  let writer =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          let tx = Engine.Txn.begin_ db in
          for _ = 1 to 20 do
            ignore (Engine.exec ~txn:tx db insert)
          done;
          Engine.Txn.commit tx;
          incr commits;
          rows := !rows + 20
        done)
      ()
  in
  let loaded = read_for duration in
  Atomic.set stop true;
  Thread.join writer;
  let idle_p95 = Xprof.Hist.p95 idle
  and loaded_p95 = Xprof.Hist.p95 loaded in
  (* the committed rows are visible once the load stops *)
  let final =
    List.length
      (Engine.outcome_rows
         (Engine.exec db "SELECT ordid FROM orders WHERE ordid >= 1000000"))
  in
  let visibility_ok = final = !rows in
  (* headline gate: snapshot readers must not queue behind the writer.
     2x plus a small absolute floor so sub-millisecond baselines do not
     flap on scheduler noise. *)
  let reader_ok = loaded_p95 <= (2.0 *. idle_p95) +. 0.5 in
  (* begin/commit round trip with nothing in the transaction *)
  let empty_txn_ms =
    p50_ms ~iters:(if quick then 5 else 9) ~batch:50 (fun () ->
        Engine.Txn.commit (Engine.Txn.begin_ db))
  in
  Printf.printf
    "  reader p95 idle %8.3f ms | during load %8.3f ms (%.2fx) — %s\n"
    idle_p95 loaded_p95
    (loaded_p95 /. Float.max idle_p95 1e-9)
    (if reader_ok then "ok" else "VIOLATION");
  Printf.printf
    "  writer: %d commits, %d rows (%d visible after drain — %s)\n" !commits
    !rows final
    (if visibility_ok then "ok" else "LOST");
  Printf.printf "  empty begin+commit p50 %8.3f ms\n%!" empty_txn_ms;
  let section =
    J.Obj
      [
        ("backend", J.Str Xpar.backend);
        ("quick", J.Bool quick);
        ("query", J.Str query);
        ( "reader",
          J.Obj
            [
              ("idle_p95_ms", J.Float idle_p95);
              ("during_load_p95_ms", J.Float loaded_p95);
              ("idle_requests", J.Int (Xprof.Hist.count idle));
              ("during_load_requests", J.Int (Xprof.Hist.count loaded));
              ("ok", J.Bool reader_ok);
            ] );
        ( "writer",
          J.Obj
            [
              ("commits", J.Int !commits);
              ("rows", J.Int !rows);
              ("rows_per_s", J.Float (float_of_int !rows /. duration));
            ] );
        ("empty_txn_p50_ms", J.Float empty_txn_ms);
        ("visibility_ok", J.Bool visibility_ok);
        ("ok", J.Bool (reader_ok && visibility_ok));
      ]
  in
  splice_section ~out ~key:"txn" section;
  Printf.printf "spliced \"txn\" section into %s\n" out

(* ------------------------------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let rec arg_value key = function
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> arg_value key rest
    | [] -> None
  in
  if List.mem "--governor-overhead" argv then (
    governor_overhead ();
    exit 0);
  (match arg_value "--suite" argv with
  | Some "micro" ->
      let quick = List.mem "--quick" argv in
      let out =
        Option.value (arg_value "--out" argv) ~default:"BENCH_micro.json"
      in
      micro_suite ~quick ~out ();
      exit 0
  | Some "prepared" ->
      let quick = List.mem "--quick" argv in
      let out =
        Option.value (arg_value "--out" argv) ~default:"BENCH_micro.json"
      in
      prepared_suite ~quick ~out ();
      exit 0
  | Some "parallel" ->
      let quick = List.mem "--quick" argv in
      let out =
        Option.value (arg_value "--out" argv) ~default:"BENCH_micro.json"
      in
      parallel_suite ~quick ~out ();
      exit 0
  | Some "durability" ->
      let quick = List.mem "--quick" argv in
      let out =
        Option.value (arg_value "--out" argv) ~default:"BENCH_micro.json"
      in
      durability_suite ~quick ~out ();
      exit 0
  | Some "server" ->
      let quick = List.mem "--quick" argv in
      let out =
        Option.value (arg_value "--out" argv) ~default:"BENCH_micro.json"
      in
      server_suite ~quick ~out ();
      exit 0
  | Some "txn" ->
      let quick = List.mem "--quick" argv in
      let out =
        Option.value (arg_value "--out" argv) ~default:"BENCH_micro.json"
      in
      txn_suite ~quick ~out ();
      exit 0
  | Some "structural" ->
      let quick = List.mem "--quick" argv in
      let out =
        Option.value (arg_value "--out" argv) ~default:"BENCH_micro.json"
      in
      structural_suite ~quick ~out ();
      exit 0
  | Some other ->
      Printf.eprintf
        "unknown suite %S (available: micro, parallel, prepared, durability, \
         server, txn, structural)\n"
        other;
      exit 2
  | None -> ());
  Printf.printf
    "xqdb benchmark harness — reproducing the performance shape of \"On \
     the Path to Efficient XML Queries\" (VLDB 2006)\n";
  Printf.printf "collection size: %d documents (unless noted)\n" n_docs;
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  Printf.printf
    "\nAll experiments complete. See EXPERIMENTS.md for the \
     paper-vs-measured record.\n"
